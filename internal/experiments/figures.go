package experiments

import (
	"fmt"
	"strings"
	"time"

	"graph2par/internal/auggraph"
	"graph2par/internal/dataset"
	"graph2par/internal/train"
)

// ---------------------------------------------------------------------------
// Figure 2 — category-wise loops missed by the tools

// Figure2Result counts, per tool, the actually-parallel loops it failed to
// detect, bucketed by the paper's five categories. Coverage mirrors the
// section 2 statistic (fraction of loops each tool can process at all).
type Figure2Result struct {
	// Missed[tool][category] = count.
	Missed map[string]map[string]int
	// Coverage[tool] = processable fraction of all loops.
	Coverage map[string]float64
	Total    int
}

// Figure2 reproduces the missed-loop histogram.
func (st *Suite) Figure2() *Figure2Result {
	res := &Figure2Result{
		Missed:   map[string]map[string]int{},
		Coverage: map[string]float64{},
		Total:    len(st.Corpus.Samples),
	}
	for _, tool := range st.Tools {
		vs := st.RunTool(tool)
		buckets := map[string]int{}
		processable := 0
		for i, s := range st.Corpus.Samples {
			if vs[i].Processable {
				processable++
			}
			if !s.Parallel {
				continue
			}
			if vs[i].Processable && vs[i].Parallel {
				continue // detected
			}
			buckets[missCategory(s)]++
		}
		res.Missed[tool.Name()] = buckets
		res.Coverage[tool.Name()] = float64(processable) / float64(len(st.Corpus.Samples))
	}
	return res
}

// Format renders the histogram as text.
func (r *Figure2Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 2: category-wise parallel loops missed per tool\n")
	header := append([]string{"Tool"}, figure2Categories...)
	b.WriteString(row(append(header, "coverage")...) + "\n")
	for _, tool := range sortedKeys(r.Missed) {
		cells := []string{tool}
		for _, cat := range figure2Categories {
			cells = append(cells, fmt.Sprint(r.Missed[tool][cat]))
		}
		cells = append(cells, pct(r.Coverage[tool])+"%")
		b.WriteString(row(cells...) + "\n")
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// §6.5 — aug-AST construction overhead

// OverheadResult summarizes per-loop aug-AST construction cost.
type OverheadResult struct {
	Loops     int
	Total     time.Duration
	PerLoop   time.Duration
	MaxSingle time.Duration
}

// Overhead measures aug-AST construction over the test split.
func (st *Suite) Overhead() *OverheadResult {
	res := &OverheadResult{}
	for _, s := range st.Test {
		start := time.Now()
		g := auggraph.Build(s.Loop, auggraph.Default())
		el := time.Since(start)
		_ = g
		res.Loops++
		res.Total += el
		if el > res.MaxSingle {
			res.MaxSingle = el
		}
	}
	if res.Loops > 0 {
		res.PerLoop = res.Total / time.Duration(res.Loops)
	}
	return res
}

// Format renders the overhead summary.
func (r *OverheadResult) Format() string {
	return fmt.Sprintf("Section 6.5: aug-AST construction overhead: %d loops, total %v, mean %v/loop, max %v\n",
		r.Loops, r.Total, r.PerLoop, r.MaxSingle)
}

// ---------------------------------------------------------------------------
// §6.6 — case study: tool blind spots Graph2Par covers

// CaseStudyResult lists parallel loops missed by every tool, and how many
// of those Graph2Par detects.
type CaseStudyResult struct {
	MissedByAllTools int
	RecoveredByModel int
	ExampleSources   []string
}

// CaseStudy reproduces the 48-loops analysis: parallel loops that every
// algorithm-based tool misses, scored against Graph2Par's predictions.
func (st *Suite) CaseStudy() *CaseStudyResult {
	res := &CaseStudyResult{}
	g2p, vocab := st.Graph2Par()

	detected := make([][]bool, len(st.Tools))
	for ti, tool := range st.Tools {
		vs := st.RunTool(tool)
		det := make([]bool, len(vs))
		for i, v := range vs {
			det[i] = v.Processable && v.Parallel
		}
		detected[ti] = det
	}

	var blind []*dataset.Sample
	for i, s := range st.Corpus.Samples {
		if !s.Parallel {
			continue
		}
		missedByAll := true
		for ti := range st.Tools {
			if detected[ti][i] {
				missedByAll = false
				break
			}
		}
		if missedByAll {
			blind = append(blind, s)
		}
	}
	res.MissedByAllTools = len(blind)
	if len(blind) == 0 {
		return res
	}

	set := train.PrepareGraphsN(st.Workers, blind, auggraph.Default(), vocab, train.ParallelLabel)
	preds := train.PredictHGTN(st.Workers, g2p, set)
	for i, p := range preds {
		if p {
			res.RecoveredByModel++
			if len(res.ExampleSources) < 3 {
				res.ExampleSources = append(res.ExampleSources, set.Samples[i].LoopSrc)
			}
		}
	}
	return res
}

// Format renders the case-study summary.
func (r *CaseStudyResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 6.6: %d parallel loops missed by all three tools; Graph2Par recovers %d\n",
		r.MissedByAllTools, r.RecoveredByModel)
	for i, src := range r.ExampleSources {
		fmt.Fprintf(&b, "  example %d:\n%s\n", i+1, indent(src))
	}
	return b.String()
}

func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n")
}
