package dataset

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"graph2par/internal/cast"
	"graph2par/internal/cparse"
	"graph2par/internal/pragma"
	"graph2par/internal/tensor"
)

// Sample is one labeled loop of the OMP_Serial corpus.
type Sample struct {
	ID       int    `json:"id"`
	Origin   string `json:"origin"`   // "github" | "synthetic"
	Category string `json:"category"` // "", "private", "reduction", "simd", "target"
	Parallel bool   `json:"parallel"`
	// LoopSrc is the loop source WITHOUT its pragma: the model input.
	LoopSrc string `json:"loop_src"`
	// Pragma is the original OpenMP directive ("" for non-parallel loops).
	Pragma string `json:"pragma,omitempty"`
	// FileSrc is the enclosing translation unit ("" for bare snippets).
	FileSrc    string `json:"file_src,omitempty"`
	Compilable bool   `json:"compilable"`
	Runnable   bool   `json:"runnable"`
	HasCall    bool   `json:"has_call"`
	Nested     bool   `json:"nested"`
	LOC        int    `json:"loc"`
	// Mislabeled marks developer-label noise: the loop is genuinely
	// parallel but its pragma was "forgotten" during generation. Analysis
	// code must NOT read this flag (the paper's authors could not); it
	// exists for diagnostics and the ground-truth oracle tests.
	Mislabeled bool `json:"mislabeled,omitempty"`

	// Parsed artifacts, rebuilt on load.
	Loop cast.Stmt  `json:"-"`
	File *cast.File `json:"-"`
}

// Corpus is the generated dataset.
type Corpus struct {
	Samples []*Sample
	// Dropped counts generation candidates discarded because they failed
	// to parse (the analogue of the paper's failed compile checks).
	Dropped int
}

// Config controls generation.
type Config struct {
	// Scale multiplies the Table 1 counts (1.0 reproduces the paper's
	// 33,670 loops; the experiment default is smaller for CPU training).
	Scale float64
	Seed  uint64
	// Noise is the developer-label noise rate: the fraction of genuinely
	// parallel GitHub loops whose pragma the "developer" forgot, so they
	// are labeled non-parallel (the paper observed exactly this in the
	// crawl). Noise is only applied to loops with pure math calls — the
	// category no algorithm-based tool can detect — so the tools' zero-
	// false-positive property of Table 4 is preserved. Negative disables;
	// 0 uses DefaultNoise.
	Noise float64
}

// DefaultNoise is the default developer-label noise rate.
const DefaultNoise = 0.5 // of noise-eligible (math-call) parallel loops

// categorySpec carries one Table 1 row.
type categorySpec struct {
	name   string
	total  int
	calls  int
	nested int
}

// Table 1 (GitHub rows).
var githubSpecs = []categorySpec{
	{name: "reduction", total: 3705, calls: 279, nested: 887},
	{name: "private", total: 6278, calls: 680, nested: 2589},
	{name: "simd", total: 3574, calls: 42, nested: 201},
	{name: "target", total: 2155, calls: 99, nested: 191},
	{name: "", total: 13972, calls: 3043, nested: 5931}, // non-parallel
}

// Synthetic row counts (Table 1, synthetic block).
const (
	synthReduction   = 200
	synthDoAll       = 200
	synthNonParallel = 700
)

// Fidelity-level probabilities for GitHub-surrogate samples, calibrated so
// the per-tool subsets of Table 4 keep the paper's ordering
// (PLUTO > autoPar > DiscoPoP).
const (
	pRunnable   = 0.19
	pCompilable = 0.64 // of the non-runnable remainder
)

// Generate builds the corpus.
func Generate(cfg Config) *Corpus {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	noise := cfg.Noise
	if noise == 0 {
		noise = DefaultNoise
	} else if noise < 0 {
		noise = 0
	}
	rng := tensor.NewRNG(cfg.Seed ^ 0x0A7A5E71A1)
	c := &Corpus{}

	scaled := func(n int) int {
		v := int(float64(n)*cfg.Scale + 0.5)
		if v < 4 {
			v = 4
		}
		return v
	}

	// GitHub-surrogate block. Noise samples (mislabeled parallel loops) do
	// not consume the category quota: the Table 1 counts are label-level
	// counts, and a forgotten pragma lands a loop in the crawl's
	// non-parallel population instead.
	for _, spec := range githubSpecs {
		n := scaled(spec.total)
		pCall := float64(spec.calls) / float64(spec.total)
		pNest := float64(spec.nested) / float64(spec.total)
		kept := 0
		for i := 0; kept < n && i < 3*n; i++ {
			sRng := rng.Split()
			withCall := chance(sRng, pCall)
			nested := chance(sRng, pNest)

			level := 0
			if chance(sRng, pRunnable) {
				level = 2
			} else if chance(sRng, pCompilable) {
				level = 1
			}
			ctx := newCtx(sRng, level == 2)

			var u *unit
			switch spec.name {
			case "reduction":
				switch {
				case chance(sRng, 0.08):
					u = genMixed(ctx)
				case !nested && chance(sRng, 0.07):
					u = genStructReduction(ctx, withCall || chance(sRng, 0.5))
				default:
					u = genReduction(ctx, withCall, nested)
				}
			case "private":
				u = genPrivate(ctx, withCall, nested)
			case "simd":
				u = genSIMD(ctx, withCall, nested)
			case "target":
				u = genTarget(ctx, withCall, nested)
			default:
				if chance(sRng, 0.10) {
					u = genWhileNonParallel(ctx)
					level = 0 // while accumulators stay snippets
				} else {
					u = genNonParallel(ctx, withCall, nested)
				}
			}
			if u.pragma != "" && u.noiseEligible && chance(sRng, noise) {
				// developer forgot the pragma: genuinely parallel, labeled
				// non-parallel (section 4.1's observation).
				u.pragma = ""
				u.category = ""
				c.addSampleMislabeled(u, level, "github", sRng)
				continue
			}
			c.addSample(u, level, "github", sRng)
			kept++
		}
	}

	// Synthetic block: templates, always assembled as runnable programs.
	addTemplates := func(templates []string, count int) {
		perTemplate := count / len(templates)
		if perTemplate < 1 {
			perTemplate = 1
		}
		emitted := 0
		for _, tmpl := range templates {
			for v := 0; v < perTemplate && emitted < count; v++ {
				sRng := rng.Split()
				u := renderTemplate(tmpl, sRng)
				c.addSample(u, 2, "synthetic", sRng)
				emitted++
			}
		}
	}
	addTemplates(doAllTemplates, scaled(synthDoAll))
	addTemplates(reductionTemplates, scaled(synthReduction))
	addTemplates(nonParallelTemplates, scaled(synthNonParallel))

	return c
}

// addSampleMislabeled adds a noise sample (parallel loop without pragma).
func (c *Corpus) addSampleMislabeled(u *unit, level int, origin string, rng *tensor.RNG) {
	before := len(c.Samples)
	c.addSample(u, level, origin, rng)
	if len(c.Samples) > before {
		c.Samples[len(c.Samples)-1].Mislabeled = true
	}
}

// addSample assembles, parses, labels and appends one sample; parse
// failures are dropped like failed compiles.
func (c *Corpus) addSample(u *unit, level int, origin string, rng *tensor.RNG) {
	asm := assemble(u, level, rng)
	s := &Sample{
		ID:         len(c.Samples),
		Origin:     origin,
		Category:   u.category,
		Parallel:   u.pragma != "",
		LoopSrc:    u.loopSrc,
		Pragma:     u.pragma,
		FileSrc:    asm.fileSrc,
		Compilable: asm.compilable,
		Runnable:   asm.runnable,
		HasCall:    u.hasCall,
		Nested:     u.nested,
		LOC:        strings.Count(strings.TrimSpace(u.loopSrc), "\n") + 1,
	}
	if err := s.parse(); err != nil {
		c.Dropped++
		return
	}
	// Category sanity: derive from the pragma text as the paper does.
	if s.Pragma != "" {
		info := pragma.Parse(s.Pragma)
		if !info.IsOMP || !info.ParallelFor {
			c.Dropped++
			return
		}
	}
	c.Samples = append(c.Samples, s)
}

// parse builds Loop (and File when present); the target loop of a file is
// the last top-level loop of its main/work function.
func (s *Sample) parse() error {
	if s.FileSrc != "" {
		f, err := cparse.ParseFile(s.FileSrc)
		if err != nil {
			return err
		}
		s.File = f
		loop := lastTopLevelLoop(f)
		if loop == nil {
			return fmt.Errorf("dataset: no loop found in assembled file")
		}
		s.Loop = loop
		return nil
	}
	src := s.LoopSrc
	if s.Pragma != "" {
		src = s.Pragma + "\n" + src
	}
	st, err := cparse.ParseStmt(src)
	if err != nil {
		return err
	}
	s.Loop = st
	return nil
}

// lastTopLevelLoop returns the last loop statement in the body of the last
// function of the file (main for runnable programs, work otherwise).
func lastTopLevelLoop(f *cast.File) cast.Stmt {
	if len(f.Funcs) == 0 {
		return nil
	}
	fn := f.Funcs[len(f.Funcs)-1]
	if fn.Body == nil {
		return nil
	}
	var last cast.Stmt
	for _, it := range fn.Body.Items {
		switch it.(type) {
		case *cast.For, *cast.While:
			last = it
		}
	}
	return last
}

// Categories returns the pragma categories of the sample in the paper's
// taxonomy.
func (s *Sample) Categories() []pragma.Category {
	if s.Pragma == "" {
		return nil
	}
	return pragma.Parse(s.Pragma).Categories
}

// ---------------------------------------------------------------------------
// splits

// Split partitions samples into train/test deterministically.
func (c *Corpus) Split(testFrac float64, seed uint64) (train, test []*Sample) {
	rng := tensor.NewRNG(seed ^ 0x5EED5EED)
	perm := rng.Perm(len(c.Samples))
	nTest := int(float64(len(c.Samples)) * testFrac)
	for i, idx := range perm {
		if i < nTest {
			test = append(test, c.Samples[idx])
		} else {
			train = append(train, c.Samples[idx])
		}
	}
	return train, test
}

// ---------------------------------------------------------------------------
// stats (Table 1)

// CategoryStats aggregates one Table 1 row.
type CategoryStats struct {
	Loops    int
	Calls    int
	Nested   int
	TotalLOC int
}

// AvgLOC returns the mean loop length.
func (cs CategoryStats) AvgLOC() float64 {
	if cs.Loops == 0 {
		return 0
	}
	return float64(cs.TotalLOC) / float64(cs.Loops)
}

// Stats groups samples by (origin, category) for the Table 1 harness.
type Stats struct {
	ByKey map[string]*CategoryStats // key "origin/category"
}

// Key builds the grouping key.
func Key(origin, category string, parallel bool) string {
	if !parallel {
		category = "non-parallel"
	}
	return origin + "/" + category
}

// ComputeStats tabulates the corpus.
func (c *Corpus) ComputeStats() *Stats {
	st := &Stats{ByKey: map[string]*CategoryStats{}}
	for _, s := range c.Samples {
		k := Key(s.Origin, s.Category, s.Parallel)
		cs := st.ByKey[k]
		if cs == nil {
			cs = &CategoryStats{}
			st.ByKey[k] = cs
		}
		cs.Loops++
		if s.HasCall {
			cs.Calls++
		}
		if s.Nested {
			cs.Nested++
		}
		cs.TotalLOC += s.LOC
	}
	return st
}

// Keys returns the grouping keys in deterministic order.
func (st *Stats) Keys() []string {
	keys := make([]string, 0, len(st.ByKey))
	for k := range st.ByKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ---------------------------------------------------------------------------
// serialization

// Save writes the corpus as JSON.
func (c *Corpus) Save(path string) error {
	data, err := json.MarshalIndent(c.Samples, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a corpus from JSON and re-parses every sample.
func Load(path string) (*Corpus, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var samples []*Sample
	if err := json.Unmarshal(data, &samples); err != nil {
		return nil, err
	}
	c := &Corpus{}
	for _, s := range samples {
		if err := s.parse(); err != nil {
			c.Dropped++
			continue
		}
		c.Samples = append(c.Samples, s)
	}
	return c, nil
}
