package dataset

import (
	"fmt"
	"strings"

	"graph2par/internal/tensor"
)

// decl describes a variable the generated loop needs.
type decl struct {
	name  string
	ctype string // "int", "double", "float", or "struct <name>"
	dims  []int  // nil for scalar
	init  string // scalar initializer expression ("" = zero); arrays are
	// initialized with a generated fill loop in runnable programs

	// structFields lists the scalar field names when ctype is a struct
	// type (used to emit per-field fill loops).
	structFields []string
}

// unit is one generated loop before program assembly.
type unit struct {
	loopSrc    string // loop source, no pragma
	pragma     string // full pragma line for parallel loops, "" otherwise
	decls      []decl
	funcs      []string // source of helper function definitions
	structDefs []string // struct type definitions to prepend
	category   string   // "reduction", "private", "simd", "target", or ""
	hasCall    bool
	nested     bool
	bound      int  // the dominant trip count (for array sizing)
	bigBound   bool // true when the loop is deliberately huge (not runnable)
	useStruct  bool // uses constructs the interpreter rejects
	// noiseEligible marks parallel loops in the blind spot of ALL three
	// algorithm-based tools (pure math calls, mixed patterns): only these
	// may receive developer-label noise, so the tools' zero-FP property
	// survives.
	noiseEligible bool
}

// kindOf returns "github" or "synthetic" origin tags via assembly options.
type assembled struct {
	snippetSrc string // loop + pragma only
	fileSrc    string // full translation unit ("" when snippet-only)
	runnable   bool
	compilable bool
}

// assemble renders the unit at one of three fidelity levels:
// level 0 = bare snippet, 1 = compilable file without main, 2 = runnable
// program with initialized inputs.
func assemble(u *unit, level int, rng *tensor.RNG) assembled {
	var snippet strings.Builder
	if u.pragma != "" {
		snippet.WriteString(u.pragma + "\n")
	}
	snippet.WriteString(u.loopSrc)

	out := assembled{snippetSrc: snippet.String()}
	if level == 0 {
		return out
	}

	var b strings.Builder
	b.WriteString("#include <stdio.h>\n#include <math.h>\n\n")
	for _, sd := range u.structDefs {
		b.WriteString(sd)
		b.WriteString("\n")
	}
	for _, fn := range u.funcs {
		b.WriteString(fn)
		b.WriteString("\n")
	}

	if level == 1 {
		// Globals plus a work() function holding the loop.
		for _, d := range u.decls {
			writeDecl(&b, d, false)
		}
		b.WriteString("\nvoid work() {\n")
		b.WriteString(indentBlock(snippet.String(), 1))
		b.WriteString("\n}\n")
		out.fileSrc = b.String()
		out.compilable = true
		return out
	}

	// Runnable program: locals in main, fill loops for arrays, a sink.
	b.WriteString("int main() {\n")
	for _, d := range u.decls {
		b.WriteString("    ")
		writeDecl(&b, d, true)
	}
	// fill loops for arrays
	for _, d := range u.decls {
		if len(d.dims) == 0 {
			continue
		}
		writeFill(&b, d, rng)
	}
	b.WriteString("\n")
	b.WriteString(indentBlock(snippet.String(), 1))
	b.WriteString("\n")
	// sink: return something derived from the first scalar or array
	sink := "0"
	for _, d := range u.decls {
		if len(d.dims) == 0 && d.ctype == "int" {
			sink = d.name
			break
		}
	}
	b.WriteString(fmt.Sprintf("    return (int)(%s);\n}\n", sink))
	out.fileSrc = b.String()
	out.compilable = true
	out.runnable = true
	return out
}

func writeDecl(b *strings.Builder, d decl, local bool) {
	b.WriteString(d.ctype + " " + d.name)
	for _, dim := range d.dims {
		fmt.Fprintf(b, "[%d]", dim)
	}
	if len(d.dims) == 0 && len(d.structFields) == 0 {
		init := d.init
		if init == "" {
			init = "0"
		}
		b.WriteString(" = " + init)
	}
	b.WriteString(";\n")
}

// writeFill emits deterministic initialization loops for an array.
func writeFill(b *strings.Builder, d decl, rng *tensor.RNG) {
	mod := 7 + rng.Intn(23)
	if len(d.structFields) > 0 && len(d.dims) == 1 {
		fmt.Fprintf(b, "    for (int __f = 0; __f < %d; __f++) {\n", d.dims[0])
		for fi, field := range d.structFields {
			fmt.Fprintf(b, "        %s[__f].%s = (__f + %d) %% %d;\n", d.name, field, fi, mod)
		}
		b.WriteString("    }\n")
		return
	}
	switch len(d.dims) {
	case 1:
		fmt.Fprintf(b, "    for (int __f = 0; __f < %d; __f++) %s[__f] = (__f %% %d) + 1;\n",
			d.dims[0], d.name, mod)
	case 2:
		fmt.Fprintf(b, "    for (int __f = 0; __f < %d; __f++)\n", d.dims[0])
		fmt.Fprintf(b, "        for (int __g = 0; __g < %d; __g++) %s[__f][__g] = ((__f + __g) %% %d) + 1;\n",
			d.dims[1], d.name, mod)
	case 3:
		fmt.Fprintf(b, "    for (int __f = 0; __f < %d; __f++)\n", d.dims[0])
		fmt.Fprintf(b, "        for (int __g = 0; __g < %d; __g++)\n", d.dims[1])
		fmt.Fprintf(b, "            for (int __h = 0; __h < %d; __h++) %s[__f][__g][__h] = ((__f ^ __g) + __h) %% %d;\n",
			d.dims[2], d.name, mod)
	}
}
