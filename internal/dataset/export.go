package dataset

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"graph2par/internal/cast"
)

// ExportFiles writes the corpus to a directory tree the way a dataset
// release would ship it:
//
//	dir/
//	  github/parallel/<category>/loop_000123.c
//	  github/non-parallel/loop_000456.c
//	  synthetic/...
//	  MANIFEST.tsv
//
// Loop-only samples are written as snippet files with their pragma; samples
// with full translation units get the whole program. The manifest lists one
// line per sample: path, label, category, flags.
func (c *Corpus) ExportFiles(dir string) error {
	var manifest strings.Builder
	manifest.WriteString("path\tparallel\tcategory\thas_call\tnested\tcompilable\trunnable\n")
	for _, s := range c.Samples {
		sub := filepath.Join(s.Origin, "non-parallel")
		if s.Parallel {
			cat := s.Category
			if cat == "" {
				cat = "parallel"
			}
			sub = filepath.Join(s.Origin, "parallel", cat)
		}
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return err
		}
		name := fmt.Sprintf("loop_%06d.c", s.ID)
		rel := filepath.Join(sub, name)

		content := s.FileSrc
		if content == "" {
			var b strings.Builder
			if s.Pragma != "" {
				b.WriteString(s.Pragma + "\n")
			}
			b.WriteString(s.LoopSrc + "\n")
			content = b.String()
		}
		if err := os.WriteFile(filepath.Join(dir, rel), []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(&manifest, "%s\t%v\t%s\t%v\t%v\t%v\t%v\n",
			rel, s.Parallel, s.Category, s.HasCall, s.Nested, s.Compilable, s.Runnable)
	}
	return os.WriteFile(filepath.Join(dir, "MANIFEST.tsv"), []byte(manifest.String()), 0o644)
}

// ImportFiles loads a directory tree written by ExportFiles back into a
// corpus, re-deriving labels from the pragmas in the files (a round trip
// through the release format must not depend on the manifest).
func ImportFiles(dir string) (*Corpus, error) {
	c := &Corpus{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".c") {
			return err
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		rel, _ := filepath.Rel(dir, path)
		parts := strings.Split(rel, string(filepath.Separator))
		s := &Sample{
			ID:     len(c.Samples),
			Origin: parts[0],
		}
		src := string(data)
		if strings.Contains(src, "int main()") || strings.Contains(src, "void work()") {
			s.FileSrc = src
			s.Compilable = true
			s.Runnable = strings.Contains(src, "int main()")
		}
		// loop source and pragma
		lines := strings.Split(strings.TrimSpace(src), "\n")
		if s.FileSrc == "" {
			var loopLines []string
			for _, l := range lines {
				if strings.HasPrefix(strings.TrimSpace(l), "#pragma") {
					s.Pragma = strings.TrimSpace(l)
					continue
				}
				loopLines = append(loopLines, l)
			}
			s.LoopSrc = strings.Join(loopLines, "\n")
		} else {
			// recover the pragma of the target (last) loop
			for _, l := range lines {
				t := strings.TrimSpace(l)
				if strings.HasPrefix(t, "#pragma omp") {
					s.Pragma = t
				}
			}
		}
		s.Parallel = s.Pragma != ""
		if perr := s.parse(); perr != nil {
			c.Dropped++
			return nil
		}
		if s.LoopSrc == "" {
			// file-backed sample: derive the loop text from the parsed AST
			s.LoopSrc = cast.Print(s.Loop)
		}
		c.Samples = append(c.Samples, s)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}
