package dataset

import (
	"fmt"
	"strings"

	"graph2par/internal/tensor"
)

// The paper's synthetic generator (section 4.3) renders C programs from
// templates sourced from NPB / PolyBench / BOTS / Starbench-style kernels:
// ten do-all and ten reduction templates, 20 variations each. Variations
// substitute fresh variable names, constants and operators (+ - * / for
// do-all; + * for reduction, which must stay associative/commutative).
// Every synthetic program is complete and runnable, exactly because the
// paper verified them with DiscoPoP.

// tmplVars is the substitution set for one variation.
type tmplVars struct {
	A, B, C, M string // arrays
	I, J, S, T string // scalars
	N, K       int    // bounds
	Op         string // do-all operator
	RedOp      string // reduction operator
	C1, C2     int    // constants
}

func freshTmplVars(rng *tensor.RNG, nm *namer) tmplVars {
	return tmplVars{
		A: nm.array(), B: nm.array(), C: nm.array(), M: nm.array(),
		I: nm.scalar(), J: nm.scalar(), S: nm.scalar(), T: nm.scalar(),
		N:  24 + rng.Intn(72),
		K:  4 + rng.Intn(12),
		Op: pick(rng, "+", "-", "*", "/"),
		// reduction ops must be associative and commutative: + or * only
		RedOp: pick(rng, "+", "*"),
		C1:    1 + rng.Intn(9),
		C2:    1 + rng.Intn(9),
	}
}

// sub replaces {A}-style placeholders.
func (v tmplVars) sub(s string) string {
	r := strings.NewReplacer(
		"{A}", v.A, "{B}", v.B, "{C}", v.C, "{M}", v.M,
		"{I}", v.I, "{J}", v.J, "{S}", v.S, "{T}", v.T,
		"{N}", fmt.Sprint(v.N), "{N1}", fmt.Sprint(v.N+1), "{K}", fmt.Sprint(v.K),
		"{OP}", v.Op, "{ROP}", v.RedOp,
		"{C1}", fmt.Sprint(v.C1), "{C2}", fmt.Sprint(v.C2),
		"{RINIT}", map[string]string{"+": "0", "*": "1"}[v.RedOp],
	)
	return r.Replace(s)
}

// doAllTemplates are the ten do-all loop templates. Placeholders follow
// tmplVars; the pragma is part of the template as in the paper's Jinja2
// files.
var doAllTemplates = []string{
	// 1: vector map (PolyBench-style)
	`#pragma omp parallel for
for ({I} = 0; {I} < {N}; {I}++) {
    {A}[{I}] = {B}[{I}] {OP} {C1};
}`,
	// 2: triad (Starbench stream-style)
	`#pragma omp parallel for
for ({I} = 0; {I} < {N}; {I}++) {
    {A}[{I}] = {B}[{I}] {OP} {C}[{I}] + {C1};
}`,
	// 3: saxpy with temp (private)
	`#pragma omp parallel for private({T})
for ({I} = 0; {I} < {N}; {I}++) {
    {T} = {B}[{I}] * {C1};
    {A}[{I}] = {T} {OP} {C}[{I}];
}`,
	// 4: 2D init (NPB-style)
	`#pragma omp parallel for private({J})
for ({I} = 0; {I} < {N}; {I}++) {
    for ({J} = 0; {J} < {K}; {J}++) {
        {M}[{I}][{J}] = {I} {OP} {J} + {C1};
    }
}`,
	// 5: conditional map
	`#pragma omp parallel for
for ({I} = 0; {I} < {N}; {I}++) {
    if ({B}[{I}] > {C1}) {
        {A}[{I}] = {B}[{I}] {OP} {C2};
    }
}`,
	// 6: strided even/odd split
	`#pragma omp parallel for
for ({I} = 0; {I} < {N}; {I}++) {
    {A}[2 * {I}] = {B}[{I}] {OP} {C1};
    {A}[2 * {I} + 1] = {B}[{I}] {OP} {C2};
}`,
	// 7: math-call map
	`#pragma omp parallel for
for ({I} = 0; {I} < {N}; {I}++) {
    {A}[{I}] = (int)fabs({B}[{I}] - {C1});
}`,
	// 8: row normalize with temp
	`#pragma omp parallel for private({J}, {T})
for ({I} = 0; {I} < {N}; {I}++) {
    {T} = {B}[{I}] + {C1};
    for ({J} = 0; {J} < {K}; {J}++) {
        {M}[{I}][{J}] = {T} {OP} ({J} + 1);
    }
}`,
	// 9: gather from shifted read (distinct arrays)
	`#pragma omp parallel for
for ({I} = 0; {I} < {N}; {I}++) {
    {A}[{I}] = {B}[{I} + 1] {OP} {B}[{I}];
}`,
	// 10: double update within iteration
	`#pragma omp parallel for
for ({I} = 0; {I} < {N}; {I}++) {
    {A}[{I}] = {B}[{I}] {OP} {C1};
    {A}[{I}] = {A}[{I}] + {C2};
}`,
}

// reductionTemplates are the ten reduction templates.
var reductionTemplates = []string{
	// 1: plain sum/product
	`#pragma omp parallel for reduction({ROP}:{S})
for ({I} = 0; {I} < {N}; {I}++) {
    {S} {ROP}= {B}[{I}];
}`,
	// 2: dot product
	`#pragma omp parallel for reduction({ROP}:{S})
for ({I} = 0; {I} < {N}; {I}++) {
    {S} {ROP}= {B}[{I}] * {C}[{I}];
}`,
	// 3: neighbor-difference accumulation (Listing 1 family)
	`#pragma omp parallel for reduction(+:{S})
for ({I} = 0; {I} < {N}; {I}++) {
    {S} = {S} + ({B}[{I}] - {B}[{I} + 1]);
}`,
	// 4: conditional count
	`#pragma omp parallel for reduction(+:{S})
for ({I} = 0; {I} < {N}; {I}++) {
    if ({B}[{I}] > {C1}) {S}++;
}`,
	// 5: scaled accumulation
	`#pragma omp parallel for reduction({ROP}:{S})
for ({I} = 0; {I} < {N}; {I}++) {
    {S} {ROP}= {B}[{I}] * {C1} + {C2};
}`,
	// 6: nested 2D sum
	`#pragma omp parallel for reduction(+:{S}) private({J})
for ({I} = 0; {I} < {N}; {I}++) {
    for ({J} = 0; {J} < {K}; {J}++) {
        {S} += {M}[{I}][{J}];
    }
}`,
	// 7: math-call reduction
	`#pragma omp parallel for reduction(+:{S})
for ({I} = 0; {I} < {N}; {I}++) {
    {S} += (int)sqrt({B}[{I}] + {C1});
}`,
	// 8: sum with temp (private + reduction)
	`#pragma omp parallel for private({T}) reduction(+:{S})
for ({I} = 0; {I} < {N}; {I}++) {
    {T} = {B}[{I}] {OP} {C1};
    {S} += {T};
}`,
	// 9: two accumulators
	`#pragma omp parallel for reduction(+:{S}) reduction(+:{T})
for ({I} = 0; {I} < {N}; {I}++) {
    {S} += {B}[{I}];
    {T} += {C}[{I}];
}`,
	// 10: squared-error accumulation
	`#pragma omp parallel for reduction(+:{S})
for ({I} = 0; {I} < {N}; {I}++) {
    {S} += ({B}[{I}] - {C}[{I}]) * ({B}[{I}] - {C}[{I}]);
}`,
}

// nonParallelTemplates produce synthetic loops with inter-iteration
// dependences or data races (verified non-parallel).
var nonParallelTemplates = []string{
	`for ({I} = 1; {I} < {N}; {I}++) {
    {A}[{I}] = {A}[{I} - 1] {OP} {C1};
}`,
	`for ({I} = 0; {I} < {N}; {I}++) {
    {S} = {S} * {C1} + {B}[{I}];
    {A}[{I}] = {S};
}`,
	`for ({I} = 0; {I} < {N}; {I}++) {
    {A}[{I} + 1] = {A}[{I}] + {B}[{I}];
}`,
	`for ({I} = 2; {I} < {N}; {I}++) {
    {A}[{I}] = {A}[{I} - 1] + {A}[{I} - 2];
}`,
	`for ({I} = 1; {I} < {N}; {I}++) {
    for ({J} = 0; {J} < {K}; {J}++) {
        {M}[{I}][{J}] = {M}[{I} - 1][{J}] {OP} {C1};
    }
}`,
	`for ({I} = 0; {I} < {N}; {I}++) {
    {T} = {A}[{I}];
    {A}[{I} % {K}] = {T} + {C2};
}`,
	`for ({I} = 0; {I} < {N}; {I}++) {
    if ({B}[{I}] == {C1}) {
        {S} = {I};
        break;
    }
}`,
}

// renderTemplate fills a template and returns the unit; templates embed
// their own pragma lines.
func renderTemplate(tmpl string, rng *tensor.RNG) *unit {
	nm := newNamer(rng)
	v := freshTmplVars(rng, nm)
	src := v.sub(tmpl)

	u := &unit{bound: v.N}
	// split pragma from loop
	if strings.HasPrefix(src, "#pragma") {
		nl := strings.Index(src, "\n")
		u.pragma = src[:nl]
		u.loopSrc = src[nl+1:]
	} else {
		u.loopSrc = src
	}
	u.hasCall = strings.Contains(u.loopSrc, "fabs(") || strings.Contains(u.loopSrc, "sqrt(")
	u.nested = strings.Count(u.loopSrc, "for (") > 1

	// category from pragma
	switch {
	case strings.Contains(u.pragma, "reduction"):
		u.category = "reduction"
	case u.pragma != "":
		u.category = "private"
	}

	// declarations: scan which placeholders the template used
	dim := 2*v.N + 4
	if strings.Contains(src, v.A+"[") {
		u.decls = append(u.decls, decl{name: v.A, ctype: "int", dims: []int{dim}})
	}
	if strings.Contains(src, v.B+"[") {
		u.decls = append(u.decls, decl{name: v.B, ctype: "int", dims: []int{dim}})
	}
	if strings.Contains(src, v.C+"[") {
		u.decls = append(u.decls, decl{name: v.C, ctype: "int", dims: []int{dim}})
	}
	if strings.Contains(src, v.M+"[") {
		u.decls = append(u.decls, decl{name: v.M, ctype: "int", dims: []int{v.N + 2, v.K + 2}})
	}
	u.decls = append(u.decls, decl{name: v.I, ctype: "int"})
	if strings.Contains(src, v.J) {
		u.decls = append(u.decls, decl{name: v.J, ctype: "int"})
	}
	if strings.Contains(src, v.S) {
		u.decls = append(u.decls, decl{name: v.S, ctype: "int", init: map[string]string{"+": "0", "*": "1"}[v.RedOp]})
	}
	if strings.Contains(src, v.T) {
		u.decls = append(u.decls, decl{name: v.T, ctype: "int"})
	}
	return u
}
