package dataset

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	c := Generate(Config{Scale: 0.01, Seed: 55})
	dir := t.TempDir()
	if err := c.ExportFiles(dir); err != nil {
		t.Fatal(err)
	}

	// Manifest exists with one line per sample (+header).
	data, err := os.ReadFile(filepath.Join(dir, "MANIFEST.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != len(c.Samples)+1 {
		t.Fatalf("manifest lines = %d, want %d", len(lines), len(c.Samples)+1)
	}

	// Directory layout groups by origin/label/category.
	for _, sub := range []string{"github", "synthetic"} {
		if _, err := os.Stat(filepath.Join(dir, sub)); err != nil {
			t.Errorf("missing %s/: %v", sub, err)
		}
	}

	loaded, err := ImportFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Parsing losses allowed only for exotic snippets; labels must agree
	// in aggregate.
	if len(loaded.Samples) < len(c.Samples)*9/10 {
		t.Fatalf("import recovered %d of %d samples", len(loaded.Samples), len(c.Samples))
	}
	var origPar, loadPar int
	for _, s := range c.Samples {
		if s.Parallel {
			origPar++
		}
	}
	for _, s := range loaded.Samples {
		if s.Parallel {
			loadPar++
		}
	}
	ratio := float64(loadPar) / float64(len(loaded.Samples))
	origRatio := float64(origPar) / float64(len(c.Samples))
	if ratio < origRatio-0.1 || ratio > origRatio+0.1 {
		t.Errorf("parallel fraction drifted: %.2f vs %.2f", ratio, origRatio)
	}
}

func TestExportSnippetKeepsPragma(t *testing.T) {
	c := Generate(Config{Scale: 0.01, Seed: 56})
	dir := t.TempDir()
	if err := c.ExportFiles(dir); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range c.Samples {
		if s.FileSrc != "" || !s.Parallel {
			continue
		}
		// locate the exported snippet
		cat := s.Category
		if cat == "" {
			cat = "parallel"
		}
		path := filepath.Join(dir, s.Origin, "parallel", cat,
			strings.ReplaceAll("loop_______.c", "_______",
				// match the %06d naming
				pad6(s.ID)))
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		if !strings.Contains(string(data), "#pragma omp") {
			t.Errorf("snippet %s lost its pragma", path)
		}
		found = true
		break
	}
	if !found {
		t.Skip("no parallel snippet sample in this tiny corpus")
	}
}

func pad6(n int) string {
	s := ""
	for i := 100000; i >= 1; i /= 10 {
		s += string(rune('0' + (n/i)%10))
	}
	return s
}
