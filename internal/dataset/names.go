// Package dataset builds the OMP_Serial corpus: a GitHub-surrogate
// generator calibrated to the paper's Table 1 marginals (pragma mix,
// function-call and nesting rates, loop lengths), plus the paper's
// synthetic template engine (10 do-all + 10 reduction templates, 20
// variations each, and non-parallel counterexamples). Every sample carries
// the ground-truth label derived from its generated pragma, the parsed
// loop, and the enclosing file when one exists.
package dataset

import (
	"fmt"
	"strings"

	"graph2par/internal/tensor"
)

// name pools loosely imitating crawled code identifiers.
var scalarNames = []string{
	"i", "j", "k", "n", "m", "idx", "count", "total", "sum", "acc", "res",
	"tmp", "t", "val", "x", "y", "z", "err", "delta", "scale", "len", "size",
	"width", "height", "depth", "rows", "cols", "num", "steps", "iter",
	"alpha", "beta", "gamma", "theta", "omega", "lo", "hi", "mid", "best",
	"worst", "prod", "mean", "norm", "bias", "gain", "rate", "mass", "vel",
}

var arrayNames = []string{
	"a", "b", "c", "d", "arr", "buf", "data", "vec", "mat", "grid", "img",
	"src", "dst", "in", "out", "tab", "w", "u", "v", "p", "q", "field",
	"cells", "nodes", "edges", "vals", "keys", "hist", "bins", "samples",
	"weights", "coeff", "kern", "mask", "rowbuf", "colbuf", "accum",
}

var funcNames = []string{
	"compute", "update", "process", "transform", "evaluate", "score",
	"combine", "mix", "blend", "kernel", "apply", "scale_value", "clampf",
	"smooth", "decay", "boost",
}

var mathFuncs = []string{"fabs", "sqrt", "sin", "cos", "exp", "log", "pow", "fmax", "fmin"}

// namer hands out fresh, non-colliding identifiers from the pools.
type namer struct {
	rng  *tensor.RNG
	used map[string]bool
}

func newNamer(rng *tensor.RNG) *namer {
	return &namer{rng: rng, used: map[string]bool{}}
}

func (nm *namer) fresh(pool []string) string {
	for tries := 0; tries < 64; tries++ {
		cand := pool[nm.rng.Intn(len(pool))]
		if tries > 8 {
			cand = fmt.Sprintf("%s%d", cand, nm.rng.Intn(100))
		}
		if !nm.used[cand] {
			nm.used[cand] = true
			return cand
		}
	}
	// deterministic fallback
	cand := fmt.Sprintf("gen%d", len(nm.used))
	nm.used[cand] = true
	return cand
}

func (nm *namer) scalar() string { return nm.fresh(scalarNames) }
func (nm *namer) array() string  { return nm.fresh(arrayNames) }
func (nm *namer) fn() string     { return nm.fresh(funcNames) }

func (nm *namer) mathFn() string {
	return mathFuncs[nm.rng.Intn(len(mathFuncs))]
}

// pick returns a uniform choice from options.
func pick[T any](rng *tensor.RNG, options ...T) T {
	return options[rng.Intn(len(options))]
}

// chance returns true with probability p.
func chance(rng *tensor.RNG, p float64) bool { return rng.Float64() < p }

// indent prefixes every line of block with n levels of 4-space indent.
func indentBlock(block string, n int) string {
	pad := strings.Repeat("    ", n)
	lines := strings.Split(block, "\n")
	for i, l := range lines {
		if strings.TrimSpace(l) != "" {
			lines[i] = pad + l
		}
	}
	return strings.Join(lines, "\n")
}
