package dataset

import (
	"fmt"
	"strings"

	"graph2par/internal/tensor"
)

// genCtx carries shared state for one unit's generation.
type genCtx struct {
	rng   *tensor.RNG
	nm    *namer
	bound int
	big   bool
}

func newCtx(rng *tensor.RNG, runnable bool) *genCtx {
	c := &genCtx{rng: rng, nm: newNamer(rng)}
	if runnable {
		c.bound = 32 + rng.Intn(96)
	} else if chance(rng, 0.15) {
		c.big = true
		c.bound = pick(rng, 100000, 1000000, 30000000)
	} else {
		c.bound = 64 + rng.Intn(4000)
	}
	return c
}

func (c *genCtx) dim() int { return c.bound + 4 }

// ---------------------------------------------------------------------------
// parallel generators

// genPrivate builds a do-all loop with privatizable temporaries; its pragma
// carries a private(...) clause (the paper's "private" category).
func genPrivate(c *genCtx, withCall, nested bool) *unit {
	iv := c.nm.scalar()
	a := c.nm.array()
	b := c.nm.array()
	t := c.nm.scalar()
	u := &unit{category: "private", hasCall: withCall, nested: nested, bound: c.bound, bigBound: c.big}
	u.decls = append(u.decls,
		decl{name: a, ctype: pick(c.rng, "int", "double", "float"), dims: []int{c.dim()}},
		decl{name: b, ctype: "int", dims: []int{c.dim()}},
		decl{name: iv, ctype: "int"},
		decl{name: t, ctype: "int"},
	)

	callExpr := fmt.Sprintf("%s[%s]", b, iv)
	if withCall {
		if chance(c.rng, 0.5) {
			fn := c.nm.mathFn()
			callExpr = fmt.Sprintf("(int)%s(%s[%s])", fn, b, iv)
			u.noiseEligible = true
		} else {
			fn := c.nm.fn()
			u.funcs = append(u.funcs, fmt.Sprintf(
				"int %s(int x) {\n    return x * %d + %d;\n}\n", fn, 1+c.rng.Intn(5), c.rng.Intn(9)))
			callExpr = fmt.Sprintf("%s(%s[%s])", fn, b, iv)
		}
	}

	var body string
	var extraPrivates []string
	switch {
	case !withCall && !nested && chance(c.rng, 0.25):
		// cross-array stencil: reads b at offsets, writes a — the parallel
		// twin of the same-array recurrence in the non-parallel class.
		// (The loop below starts at 1 and b is sized bound+4, so offsets
		// stay in range.)
		body = fmt.Sprintf("%s = %s[%s - 1] + %s[%s + 1];\n%s[%s] = %s %s %d;",
			t, b, iv, b, iv, a, iv, t, pick(c.rng, "+", "*"), 1+c.rng.Intn(5))
	case !withCall && !nested && chance(c.rng, 0.18):
		// long body: many independent temp chains; the token baseline's
		// context window truncates these, the graph does not.
		body, extraPrivates = longBody(c, u, iv, a, b, t, false)
	default:
		body = fmt.Sprintf("%s = %s;\n%s[%s] = %s %s %d;",
			t, callExpr, a, iv, t, pick(c.rng, "+", "*", "-"), 1+c.rng.Intn(7))
		if chance(c.rng, 0.4) {
			cNm := c.nm.array()
			u.decls = append(u.decls, decl{name: cNm, ctype: "int", dims: []int{c.dim()}})
			body += fmt.Sprintf("\n%s[%s] = %s + %s[%s];", cNm, iv, t, b, iv)
		}
	}

	privates := []string{t}
	privates = append(privates, extraPrivates...)
	if nested {
		jv := c.nm.scalar()
		m := c.nm.array()
		inner := 8 + c.rng.Intn(24)
		u.decls = append(u.decls,
			decl{name: jv, ctype: "int"},
			decl{name: m, ctype: "int", dims: []int{c.dim(), inner}},
		)
		body += fmt.Sprintf("\nfor (%s = 0; %s < %d; %s++) {\n    %s[%s][%s] = %s + %s;\n}",
			jv, jv, inner, jv, m, iv, jv, t, jv)
		privates = append(privates, jv)
	}
	u.loopSrc = fmt.Sprintf("for (%s = 1; %s < %d; %s++) {\n%s\n}",
		iv, iv, c.bound, iv, indentBlock(body, 1))
	u.pragma = fmt.Sprintf("#pragma omp parallel for private(%s)", strings.Join(privates, ", "))
	return u
}

// genReduction builds reduction loops across the paper's difficulty
// spectrum, including the Listing 1/4/6/7 shapes.
func genReduction(c *genCtx, withCall, nested bool) *unit {
	iv := c.nm.scalar()
	acc := c.nm.scalar()
	a := c.nm.array()
	u := &unit{category: "reduction", hasCall: withCall, nested: nested, bound: c.bound, bigBound: c.big}
	op := pick(c.rng, "+", "+", "+", "*")
	accType := pick(c.rng, "double", "int", "double")
	u.decls = append(u.decls,
		decl{name: iv, ctype: "int"},
		decl{name: acc, ctype: accType, init: map[string]string{"+": "0", "*": "1"}[op]},
		decl{name: a, ctype: "int", dims: []int{c.dim()}},
	)

	variant := c.rng.Intn(6)
	if nested {
		variant = 5
	}
	var body string
	switch variant {
	case 0: // plain sum / product
		body = fmt.Sprintf("%s %s= %s[%s];", acc, op, a, iv)
	case 1: // listing-1 shape: call on neighbor difference
		if withCall {
			fn := pick(c.rng, "fabs", "sqrt", "exp")
			body = fmt.Sprintf("%s = %s %s %s(%s[%s] - %s[%s + 1]);", acc, acc, op, fn, a, iv, a, iv)
			u.noiseEligible = true
		} else {
			body = fmt.Sprintf("%s = %s %s (%s[%s] - %s[%s + 1]);", acc, acc, op, a, iv, a, iv)
		}
	case 2: // dot product
		bNm := c.nm.array()
		u.decls = append(u.decls, decl{name: bNm, ctype: "int", dims: []int{c.dim()}})
		body = fmt.Sprintf("%s %s= %s[%s] * %s[%s];", acc, op, a, iv, bNm, iv)
	case 3: // conditional count
		op = "+"
		body = fmt.Sprintf("if (%s[%s] > %d) %s++;", a, iv, c.rng.Intn(8), acc)
	case 4: // listing-4 shape: two-statement update
		op = "+"
		body = fmt.Sprintf("%s += %d;\n%s = %s + %d;", acc, 1+c.rng.Intn(4), acc, acc, 1+c.rng.Intn(4))
	case 5: // nested 2D reduction (listing-7 family)
		jv := c.nm.scalar()
		inner := 8 + c.rng.Intn(24)
		m := c.nm.array()
		u.decls = append(u.decls,
			decl{name: m, ctype: "int", dims: []int{c.dim(), inner}},
		)
		op = "+"
		body = fmt.Sprintf("for (int %s = 0; %s < %d; %s++) {\n    %s += %s[%s][%s];\n}",
			jv, jv, inner, jv, acc, m, iv, jv)
	}
	if withCall && variant != 1 {
		// fold a call into the accumulation; some variants (the
		// two-statement update) have no array read to wrap, in which case
		// no call exists and the loop is neither call-bearing nor
		// noise-eligible.
		fn := c.nm.mathFn()
		old := body
		body = strings.Replace(body, fmt.Sprintf("%s[%s]", a, iv),
			fmt.Sprintf("(int)%s(%s[%s])", fn, a, iv), 1)
		if body != old {
			u.noiseEligible = true
		} else {
			u.hasCall = false
		}
	}

	u.loopSrc = fmt.Sprintf("for (%s = 0; %s < %d; %s++) {\n%s\n}",
		iv, iv, c.bound, iv, indentBlock(body, 1))
	u.pragma = fmt.Sprintf("#pragma omp parallel for reduction(%s:%s)", op, acc)
	return u
}

// genSIMD builds the short vectorizable bodies of the "simd" category
// (Table 1: avg 2.65 LOC, almost never calls or nests).
func genSIMD(c *genCtx, withCall, nested bool) *unit {
	iv := c.nm.scalar()
	a := c.nm.array()
	b := c.nm.array()
	u := &unit{category: "simd", hasCall: withCall, nested: nested, bound: c.bound, bigBound: c.big}
	u.decls = append(u.decls,
		decl{name: iv, ctype: "int"},
		decl{name: a, ctype: "float", dims: []int{c.dim()}},
		decl{name: b, ctype: "float", dims: []int{c.dim()}},
	)
	expr := fmt.Sprintf("%s[%s] %s %d", b, iv, pick(c.rng, "*", "+", "-"), 1+c.rng.Intn(9))
	if withCall {
		expr = fmt.Sprintf("%s(%s[%s])", c.nm.mathFn(), b, iv)
	}
	body := fmt.Sprintf("%s[%s] = %s;", a, iv, expr)
	if nested {
		jv := c.nm.scalar()
		inner := 4 + c.rng.Intn(12)
		m := c.nm.array()
		u.decls = append(u.decls,
			decl{name: m, ctype: "float", dims: []int{c.dim(), inner}},
		)
		body = fmt.Sprintf("for (int %s = 0; %s < %d; %s++) %s[%s][%s] = %s;",
			jv, jv, inner, jv, m, iv, jv, expr)
	}
	u.loopSrc = fmt.Sprintf("for (%s = 0; %s < %d; %s++) %s", iv, iv, c.bound, iv, body)
	u.pragma = "#pragma omp simd"
	if chance(c.rng, 0.3) {
		u.pragma = "#pragma omp parallel for simd"
	}
	return u
}

// genTarget builds offload-style loops (the "target" category).
func genTarget(c *genCtx, withCall, nested bool) *unit {
	iv := c.nm.scalar()
	a := c.nm.array()
	b := c.nm.array()
	s := c.nm.scalar()
	u := &unit{category: "target", hasCall: withCall, nested: nested, bound: c.bound, bigBound: c.big}
	u.decls = append(u.decls,
		decl{name: iv, ctype: "int"},
		decl{name: s, ctype: "int", init: fmt.Sprint(1 + c.rng.Intn(5))},
		decl{name: a, ctype: "double", dims: []int{c.dim()}},
		decl{name: b, ctype: "double", dims: []int{c.dim()}},
	)
	expr := fmt.Sprintf("%s[%s] * %s + %d", b, iv, s, c.rng.Intn(7))
	if withCall {
		expr = fmt.Sprintf("%s(%s[%s]) * %s", c.nm.mathFn(), b, iv, s)
	}
	body := fmt.Sprintf("%s[%s] = %s;", a, iv, expr)
	if nested {
		jv := c.nm.scalar()
		inner := 8 + c.rng.Intn(16)
		m := c.nm.array()
		u.decls = append(u.decls,
			decl{name: m, ctype: "double", dims: []int{c.dim(), inner}},
		)
		body = fmt.Sprintf("for (int %s = 0; %s < %d; %s++) {\n    %s[%s][%s] = %s;\n}",
			jv, jv, inner, jv, m, iv, jv, expr)
	}
	u.loopSrc = fmt.Sprintf("for (%s = 0; %s < %d; %s++) {\n%s\n}",
		iv, iv, c.bound, iv, indentBlock(body, 1))
	u.pragma = fmt.Sprintf("#pragma omp target teams distribute parallel for map(to: %s) map(from: %s)", b, a)
	return u
}

// genMixed builds the Listing 6 shape: an array write plus a reduction in
// one body — genuinely parallel, labeled reduction.
func genMixed(c *genCtx) *unit {
	iv := c.nm.scalar()
	a := c.nm.array()
	acc := c.nm.scalar()
	u := &unit{category: "reduction", bound: c.bound, bigBound: c.big, noiseEligible: true}
	u.decls = append(u.decls,
		decl{name: iv, ctype: "int"},
		decl{name: acc, ctype: "int"},
		decl{name: a, ctype: "int", dims: []int{c.dim()}},
	)
	u.loopSrc = fmt.Sprintf("for (%s = 0; %s < %d; %s++) {\n    %s[%s] = %s * %d;\n    %s += %s;\n}",
		iv, iv, c.bound, iv, a, iv, iv, 2+c.rng.Intn(4), acc, iv)
	u.pragma = fmt.Sprintf("#pragma omp parallel for reduction(+:%s)", acc)
	return u
}

// genStructReduction builds the Listing 2 family: a reduction over struct
// array fields, usually with an abs() call — parallel, but in the blind
// spot of all three tools (call + member access), hence noise-eligible
// when the call is present.
func genStructReduction(c *genCtx, withCall bool) *unit {
	iv := c.nm.scalar()
	acc := c.nm.scalar()
	arr := c.nm.array()
	ref := c.nm.array()
	sname := pick(c.rng, "pixel", "sample_t", "cell_t", "particle")
	f1 := pick(c.rng, "r", "x", "re")
	f2 := pick(c.rng, "g", "y", "im")

	u := &unit{category: "reduction", hasCall: withCall, bound: c.bound, bigBound: c.big}
	u.structDefs = append(u.structDefs,
		fmt.Sprintf("struct %s { int %s; int %s; };", sname, f1, f2))
	u.decls = append(u.decls,
		decl{name: iv, ctype: "int"},
		decl{name: acc, ctype: "int"},
		decl{name: arr, ctype: "struct " + sname, dims: []int{c.dim()}, structFields: []string{f1, f2}},
		decl{name: ref, ctype: "struct " + sname, dims: []int{c.dim()}, structFields: []string{f1, f2}},
	)
	term1 := fmt.Sprintf("%s[%s].%s - %s[%s].%s", ref, iv, f1, arr, iv, f1)
	term2 := fmt.Sprintf("%s[%s].%s - %s[%s].%s", ref, iv, f2, arr, iv, f2)
	if withCall {
		term1 = "abs(" + term1 + ")"
		term2 = "abs(" + term2 + ")"
		u.noiseEligible = true
	} else {
		term1 = "(" + term1 + ")"
		term2 = "(" + term2 + ")"
	}
	u.loopSrc = fmt.Sprintf("for (%s = 0; %s < %d; %s++) {\n    %s += %s + %s;\n}",
		iv, iv, c.bound, iv, acc, term1, term2)
	u.pragma = fmt.Sprintf("#pragma omp parallel for reduction(+:%s)", acc)
	return u
}

// ---------------------------------------------------------------------------
// non-parallel generators

// genNonParallel builds loops with genuine cross-iteration dependences.
func genNonParallel(c *genCtx, withCall, nested bool) *unit {
	iv := c.nm.scalar()
	a := c.nm.array()
	u := &unit{hasCall: withCall, nested: nested, bound: c.bound, bigBound: c.big}
	u.decls = append(u.decls,
		decl{name: iv, ctype: "int"},
		decl{name: a, ctype: "int", dims: []int{c.dim()}},
	)

	variant := c.rng.Intn(9)
	if nested {
		variant = 5
	}
	if withCall && variant != 3 && variant != 6 {
		variant = 3
	}
	switch variant {
	case 0: // prefix recurrence
		u.loopSrc = fmt.Sprintf("for (%s = 1; %s < %d; %s++) {\n    %s[%s] = %s[%s - 1] %s %d;\n}",
			iv, iv, c.bound, iv, a, iv, a, iv, pick(c.rng, "+", "*"), 1+c.rng.Intn(5))
	case 1: // carried scalar state written back
		s := c.nm.scalar()
		u.decls = append(u.decls, decl{name: s, ctype: "int", init: "1"})
		u.loopSrc = fmt.Sprintf("for (%s = 0; %s < %d; %s++) {\n    %s = %s * %d + %s[%s];\n    %s[%s] = %s;\n}",
			iv, iv, c.bound, iv, s, s, 2+c.rng.Intn(3), a, iv, a, iv, s)
	case 2: // write to the next element
		u.loopSrc = fmt.Sprintf("for (%s = 0; %s < %d; %s++) {\n    %s[%s + 1] = %s[%s] + %d;\n}",
			iv, iv, c.bound, iv, a, iv, a, iv, 1+c.rng.Intn(7))
	case 3: // carried state through a call
		s := c.nm.scalar()
		fn := c.nm.fn()
		u.hasCall = true
		u.decls = append(u.decls, decl{name: s, ctype: "int", init: "1"})
		u.funcs = append(u.funcs, fmt.Sprintf(
			"int %s(int x, int y) {\n    return x * 3 + y;\n}\n", fn))
		u.loopSrc = fmt.Sprintf("for (%s = 0; %s < %d; %s++) {\n    %s = %s(%s, %s[%s]);\n}",
			iv, iv, c.bound, iv, s, fn, s, a, iv)
	case 4: // running best with use (not a pure max-reduction)
		bst := c.nm.scalar()
		bNm := c.nm.array()
		u.decls = append(u.decls,
			decl{name: bst, ctype: "int"},
			decl{name: bNm, ctype: "int", dims: []int{c.dim()}},
		)
		u.loopSrc = fmt.Sprintf("for (%s = 0; %s < %d; %s++) {\n    if (%s[%s] > %s) %s = %s[%s];\n    %s[%s] = %s;\n}",
			iv, iv, c.bound, iv, a, iv, bst, bst, a, iv, bNm, iv, bst)
	case 5: // nested with dependence across outer iterations
		jv := c.nm.scalar()
		inner := 8 + c.rng.Intn(16)
		m := c.nm.array()
		u.decls = append(u.decls,
			decl{name: jv, ctype: "int"},
			decl{name: m, ctype: "int", dims: []int{c.dim(), inner}},
		)
		u.loopSrc = fmt.Sprintf("for (%s = 1; %s < %d; %s++) {\n    for (%s = 0; %s < %d; %s++) {\n        %s[%s][%s] = %s[%s - 1][%s] + %d;\n    }\n}",
			iv, iv, c.bound, iv, jv, jv, inner, jv, m, iv, jv, m, iv, jv, 1+c.rng.Intn(4))
	case 6: // early-exit search
		pos := c.nm.scalar()
		key := c.nm.scalar()
		u.decls = append(u.decls,
			decl{name: pos, ctype: "int", init: "-1"},
			decl{name: key, ctype: "int", init: fmt.Sprint(1 + c.rng.Intn(9))},
		)
		u.loopSrc = fmt.Sprintf("for (%s = 0; %s < %d; %s++) {\n    if (%s[%s] == %s) {\n        %s = %s;\n        break;\n    }\n}",
			iv, iv, c.bound, iv, a, iv, key, pos, iv)
	case 7: // Horner accumulation: the non-associative twin of a reduction
		s2 := c.nm.scalar()
		u.decls = append(u.decls, decl{name: s2, ctype: "int", init: "1"})
		u.loopSrc = fmt.Sprintf("for (%s = 0; %s < %d; %s++) {\n    %s = %s * %d + %s[%s];\n}",
			iv, iv, c.bound, iv, s2, s2, 2+c.rng.Intn(3), a, iv)
	case 8: // long body ending in a recurrence (buried dependence)
		t := c.nm.scalar()
		bNm := c.nm.array()
		u.decls = append(u.decls,
			decl{name: t, ctype: "int"},
			decl{name: bNm, ctype: "int", dims: []int{c.dim()}},
		)
		body, _ := longBody(c, u, iv, a, bNm, t, true)
		u.loopSrc = fmt.Sprintf("for (%s = 1; %s < %d; %s++) {\n%s\n}",
			iv, iv, c.bound, iv, indentBlock(body, 1))
	}
	return u
}

// longBody emits a chain of independent temp computations; when carried is
// true the final statement hides a genuine recurrence at the very end,
// beyond a token-window's reach but inside the graph.
func longBody(c *genCtx, u *unit, iv, a, b, t string, carried bool) (string, []string) {
	var sb strings.Builder
	k := 14 + c.rng.Intn(16)
	prev := fmt.Sprintf("%s[%s]", b, iv)
	var temps []string
	for i := 0; i < k; i++ {
		tn := fmt.Sprintf("%s_%d", t, i)
		u.decls = append(u.decls, decl{name: tn, ctype: "int"})
		temps = append(temps, tn)
		fmt.Fprintf(&sb, "%s = %s %s %d;\n", tn, prev, pick(c.rng, "+", "*", "-"), 1+c.rng.Intn(7))
		prev = tn
	}
	if carried {
		fmt.Fprintf(&sb, "%s[%s] = %s[%s - 1] + %s;", a, iv, a, iv, prev)
	} else {
		fmt.Fprintf(&sb, "%s[%s] = %s;", a, iv, prev)
	}
	return sb.String(), temps
}

// genWhileNonParallel builds while-loop accumulators (never canonical, so
// outside every tool's coverage).
func genWhileNonParallel(c *genCtx) *unit {
	x := c.nm.scalar()
	s := c.nm.scalar()
	u := &unit{bound: c.bound}
	u.decls = append(u.decls,
		decl{name: x, ctype: "int", init: fmt.Sprint(c.bound % 97)},
		decl{name: s, ctype: "int"},
	)
	u.loopSrc = fmt.Sprintf("while (%s > 0) {\n    %s = %s + %s;\n    %s = %s / 2;\n}",
		x, s, s, x, x, x)
	return u
}
