package dataset

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graph2par/internal/cast"
	"graph2par/internal/cinterp"
	"graph2par/internal/pragma"
	"graph2par/internal/tensor"
)

func smallCorpus(t *testing.T) *Corpus {
	t.Helper()
	return Generate(Config{Scale: 0.02, Seed: 7})
}

func TestGenerateParsesEverything(t *testing.T) {
	c := smallCorpus(t)
	if len(c.Samples) == 0 {
		t.Fatal("empty corpus")
	}
	if c.Dropped > len(c.Samples)/10 {
		t.Errorf("dropped %d of %d candidates — generator emits unparsable code", c.Dropped, len(c.Samples)+c.Dropped)
	}
	for _, s := range c.Samples {
		if s.Loop == nil {
			t.Fatalf("sample %d has no parsed loop", s.ID)
		}
		switch s.Loop.(type) {
		case *cast.For, *cast.While:
		default:
			t.Fatalf("sample %d loop type %T", s.ID, s.Loop)
		}
	}
}

func TestLabelsConsistentWithPragmas(t *testing.T) {
	c := smallCorpus(t)
	for _, s := range c.Samples {
		if s.Parallel != (s.Pragma != "") {
			t.Fatalf("sample %d: Parallel=%v but pragma %q", s.ID, s.Parallel, s.Pragma)
		}
		if !s.Parallel {
			continue
		}
		info := pragma.Parse(s.Pragma)
		if !info.ParallelFor {
			t.Errorf("sample %d pragma %q is not loop worksharing", s.ID, s.Pragma)
		}
		// Category must match the parsed pragma taxonomy. The "private"
		// row also covers plain do-all pragmas (Table 1 labels the
		// synthetic do-all block "private (do-all)").
		if s.Category != "" && s.Category != "private" {
			want := pragma.Category(s.Category)
			if !info.Has(want) {
				t.Errorf("sample %d category %q not carried by pragma %q", s.ID, s.Category, s.Pragma)
			}
		}
	}
}

func TestLoopSrcHasNoPragma(t *testing.T) {
	c := smallCorpus(t)
	for _, s := range c.Samples {
		if strings.Contains(s.LoopSrc, "#pragma") {
			t.Fatalf("sample %d leaks its label into LoopSrc", s.ID)
		}
	}
}

func TestDistributionRoughlyMatchesTable1(t *testing.T) {
	c := Generate(Config{Scale: 0.05, Seed: 11})
	st := c.ComputeStats()
	// Ratio checks, not absolute counts: private is the biggest parallel
	// class; non-parallel outnumbers every single parallel class.
	get := func(k string) int {
		if cs := st.ByKey[k]; cs != nil {
			return cs.Loops
		}
		return 0
	}
	priv := get("github/private")
	red := get("github/reduction")
	simd := get("github/simd")
	targ := get("github/target")
	nonp := get("github/non-parallel")
	if !(priv > red && red > simd && simd > targ) {
		t.Errorf("category ordering broken: private=%d reduction=%d simd=%d target=%d", priv, red, simd, targ)
	}
	if nonp <= priv {
		t.Errorf("non-parallel (%d) should dominate private (%d)", nonp, priv)
	}
	// SIMD loops are the shortest on average (Table 1: 2.65 LOC).
	simdLOC := st.ByKey["github/simd"].AvgLOC()
	privLOC := st.ByKey["github/private"].AvgLOC()
	if simdLOC >= privLOC {
		t.Errorf("simd avg LOC %.2f should be below private %.2f", simdLOC, privLOC)
	}
	// Synthetic block exists with both labels.
	if get("synthetic/reduction") == 0 || get("synthetic/private") == 0 || get("synthetic/non-parallel") == 0 {
		t.Error("synthetic rows missing")
	}
}

func TestRunnableSamplesActuallyRun(t *testing.T) {
	c := smallCorpus(t)
	ran, failed := 0, 0
	for _, s := range c.Samples {
		if !s.Runnable {
			continue
		}
		in := cinterp.New(s.File)
		in.MaxSteps = 3_000_000
		if _, err := in.Run(); err != nil {
			failed++
			if failed <= 3 {
				t.Logf("sample %d failed to run: %v\n%s", s.ID, err, s.FileSrc)
			}
		} else {
			ran++
		}
	}
	if ran == 0 {
		t.Fatal("no runnable samples executed")
	}
	if failed > ran/5 {
		t.Errorf("%d of %d runnable programs failed to interpret", failed, ran+failed)
	}
}

func TestGroundTruthAgainstInterpreterOracle(t *testing.T) {
	// Dynamic oracle: for runnable for-loop samples, replay the trace and
	// check that "parallel" samples have no unexplained inter-iteration
	// dependences and "non-parallel" samples have at least one (excluding
	// the loop control variable and declared reductions).
	c := Generate(Config{Scale: 0.03, Seed: 23})
	checked := 0
	for _, s := range c.Samples {
		if !s.Runnable {
			continue
		}
		loop, ok := s.Loop.(*cast.For)
		if !ok {
			continue
		}
		// Early-exit loops are non-parallel for ordering reasons the
		// memory trace cannot see; the oracle does not apply.
		if hasControlExit(loop.Body) {
			continue
		}
		// Developer-noise samples are deliberately mislabeled (parallel
		// loops without pragma): the oracle would — correctly — disagree.
		if s.Mislabeled {
			continue
		}
		deps, ok := traceDeps(t, s, loop)
		if !ok {
			continue
		}
		checked++
		if s.Parallel && deps {
			t.Errorf("sample %d labeled parallel but trace shows dependence:\n%s%s", s.ID, s.Pragma+"\n", s.LoopSrc)
		}
		if !s.Parallel && !deps {
			t.Errorf("sample %d labeled non-parallel but trace is clean:\n%s", s.ID, s.LoopSrc)
		}
	}
	if checked < 10 {
		t.Fatalf("oracle checked only %d samples", checked)
	}
}

// traceDeps runs the sample and reports whether an inter-iteration
// dependence exists beyond the loop control and declared reduction/private
// variables.
func traceDeps(t *testing.T, s *Sample, loop *cast.For) (bool, bool) {
	t.Helper()
	in := cinterp.New(s.File)
	in.MaxSteps = 3_000_000
	in.TraceLoop = loop

	// Resolve pragma-declared reduction/private vars plus the iv.
	var watch []string
	info := pragma.Parse(s.Pragma)
	for _, vars := range info.ReductionOps {
		watch = append(watch, vars...)
	}
	watch = append(watch, info.PrivateVars...)
	iv := inductionVar(loop)
	if iv != "" {
		watch = append(watch, iv)
	}
	in.WatchNames = watch

	type rec struct {
		iter  int
		write bool
	}
	trace := map[cinterp.Addr][]rec{}
	in.Trace = func(a cinterp.Addr, w bool, iter int) {
		trace[a] = append(trace[a], rec{iter, w})
	}
	if _, err := in.Run(); err != nil {
		return false, false
	}
	excluded := map[cinterp.Addr]bool{}
	for _, a := range in.Watched {
		excluded[a] = true
	}
	for addr, recs := range trace {
		if excluded[addr] {
			continue
		}
		iters := map[int]bool{}
		anyWrite := false
		for _, r := range recs {
			iters[r.iter] = true
			if r.write {
				anyWrite = true
			}
		}
		if anyWrite && len(iters) > 1 {
			return true, true
		}
	}
	return false, true
}

// hasControlExit reports whether the body contains break/goto/return that
// leaves the loop.
func hasControlExit(body cast.Stmt) bool {
	found := false
	depth := 0
	var walk func(n cast.Node)
	walk = func(n cast.Node) {
		switch x := n.(type) {
		case *cast.For, *cast.While, *cast.DoWhile, *cast.Switch:
			depth++
			for _, ch := range n.Children() {
				walk(ch)
			}
			depth--
			return
		case *cast.Break:
			if depth == 0 {
				found = true
			}
		case *cast.Goto, *cast.Return:
			found = true
		default:
			_ = x
		}
		for _, ch := range n.Children() {
			walk(ch)
		}
	}
	walk(body)
	return found
}

func inductionVar(f *cast.For) string {
	switch init := f.Init.(type) {
	case *cast.ExprStmt:
		if asn, ok := init.X.(*cast.Assign); ok {
			if id, ok := asn.LHS.(*cast.Ident); ok {
				return id.Name
			}
		}
	case *cast.DeclStmt:
		if len(init.Decls) > 0 {
			return init.Decls[0].Name
		}
	}
	return ""
}

func TestSplitDeterministicAndDisjoint(t *testing.T) {
	c := smallCorpus(t)
	tr1, te1 := c.Split(0.2, 99)
	tr2, te2 := c.Split(0.2, 99)
	if len(tr1) != len(tr2) || len(te1) != len(te2) {
		t.Fatal("split not deterministic")
	}
	if len(te1) == 0 || len(tr1) == 0 {
		t.Fatal("degenerate split")
	}
	seen := map[int]bool{}
	for _, s := range tr1 {
		seen[s.ID] = true
	}
	for _, s := range te1 {
		if seen[s.ID] {
			t.Fatal("train/test overlap")
		}
	}
	if len(tr1)+len(te1) != len(c.Samples) {
		t.Error("split loses samples")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := smallCorpus(t)
	path := filepath.Join(t.TempDir(), "omp_serial.json")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Samples) != len(c.Samples) {
		t.Fatalf("loaded %d, want %d", len(loaded.Samples), len(c.Samples))
	}
	for i := range c.Samples {
		if loaded.Samples[i].LoopSrc != c.Samples[i].LoopSrc {
			t.Fatal("loop source changed in round trip")
		}
		if loaded.Samples[i].Loop == nil {
			t.Fatal("loaded sample not re-parsed")
		}
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Scale: 0.01, Seed: 5})
	b := Generate(Config{Scale: 0.01, Seed: 5})
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("sizes differ")
	}
	for i := range a.Samples {
		if a.Samples[i].LoopSrc != b.Samples[i].LoopSrc || a.Samples[i].Pragma != b.Samples[i].Pragma {
			t.Fatalf("sample %d differs across same-seed runs", i)
		}
	}
	c := Generate(Config{Scale: 0.01, Seed: 6})
	same := 0
	for i := range a.Samples {
		if i < len(c.Samples) && a.Samples[i].LoopSrc == c.Samples[i].LoopSrc {
			same++
		}
	}
	if same == len(a.Samples) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestCoverageFlagProportions(t *testing.T) {
	c := Generate(Config{Scale: 0.08, Seed: 3})
	var runnable, compilable, github int
	for _, s := range c.Samples {
		if s.Origin != "github" {
			continue
		}
		github++
		if s.Runnable {
			runnable++
		}
		if s.Compilable {
			compilable++
		}
	}
	rFrac := float64(runnable) / float64(github)
	cFrac := float64(compilable) / float64(github)
	if rFrac < 0.10 || rFrac > 0.30 {
		t.Errorf("runnable fraction %.2f outside band", rFrac)
	}
	if cFrac < 0.55 || cFrac > 0.85 {
		t.Errorf("compilable fraction %.2f outside band", cFrac)
	}
	if cFrac <= rFrac {
		t.Error("compilable must include runnable and more")
	}
}

func TestNamerNoCollisions(t *testing.T) {
	nm := newNamer(tensor.NewRNG(1))
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		n := nm.fresh(scalarNames)
		if seen[n] {
			t.Fatalf("collision on %q", n)
		}
		seen[n] = true
	}
}
