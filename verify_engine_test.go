package graph2par

import (
	"encoding/json"
	"testing"

	"graph2par/internal/verify"
)

// verifyProgram has loops the quick test model will split between
// parallel and not; every suggested pragma must come back with a verdict.
const verifyProgram = `
void kernels(int n, double a[], double b[]) {
    for (int i = 0; i < n; i++) b[i] = a[i] * 2.0;
    for (int i = 1; i < n; i++) a[i] = a[i - 1] + 1.0;
    for (int i = 0; i < n; i++) a[i] = b[i] + a[i];
}
`

func TestEngineVerifyStage(t *testing.T) {
	e := engine(t)
	e.SetVerify(true)
	defer e.SetVerify(false)

	reports, err := e.AnalyzeSource(verifyProgram)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := 0
	for _, r := range reports {
		if r.Parallel != (r.Verdict != nil) {
			t.Errorf("line %d: Parallel=%v but Verdict=%v", r.Line, r.Parallel, r.Verdict)
		}
		if r.Verdict != nil {
			verdicts++
			switch r.Verdict.Level {
			case verify.Safe, verify.Unknown, verify.Unsafe:
			default:
				t.Errorf("line %d: verdict outside the lattice: %+v", r.Line, r.Verdict)
			}
		}
	}
	if verdicts == 0 {
		t.Skip("model predicted no loop parallel; nothing to verify")
	}
	st, ok := e.VerifyStats()
	if !ok {
		t.Fatal("VerifyStats not ok with verification enabled")
	}
	if st.Safe+st.Unknown+st.Unsafe == 0 {
		t.Error("verdict counters never moved")
	}
	if r, _ := e.AnalyzeSource(verifyProgram); len(r) != len(reports) {
		t.Fatal("re-analysis changed loop count")
	}
	if _, ok := e.VerifyStats(); !ok {
		t.Error("VerifyStats flipped off mid-run")
	}
}

// TestEngineVerifyDeterministic pins the acceptance criterion: with the
// verification stage on, whole-report output is byte-identical across
// runs, worker counts and cache hits.
func TestEngineVerifyDeterministic(t *testing.T) {
	e := engine(t)
	e.SetVerify(true)
	e.SetCacheSize(64)
	defer func() {
		e.SetVerify(false)
		e.SetCacheSize(0)
		e.SetWorkers(0)
	}()

	render := func() string {
		reports, err := e.AnalyzeSource(verifyProgram)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(reports)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	first := render()
	// Second run is served from the cache: the stored verdict must replay
	// byte-for-byte, including findings.
	if got := render(); got != first {
		t.Fatalf("cached run differs:\n%s\n--- vs ---\n%s", got, first)
	}
	for _, w := range []int{1, 2, 7} {
		e.SetWorkers(w)
		e.SetCacheSize(64) // fresh cache: recompute, don't replay
		if got := render(); got != first {
			t.Fatalf("workers=%d differs:\n%s\n--- vs ---\n%s", w, got, first)
		}
	}
}

func TestEngineVerifyDisabled(t *testing.T) {
	e := engine(t)
	reports, err := e.AnalyzeSource(verifyProgram)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Verdict != nil {
			t.Errorf("line %d: verdict attached with verification off", r.Line)
		}
	}
	if _, ok := e.VerifyStats(); ok {
		t.Error("VerifyStats ok with verification off")
	}
}

func TestCloneReportDetachesVerdict(t *testing.T) {
	orig := LoopReport{Verdict: &verify.Verdict{
		Level:    verify.Unsafe,
		Reason:   "r",
		Findings: []verify.Finding{{Check: "structure", Level: verify.Unsafe, Reason: "r"}},
	}}
	cl := cloneReport(orig)
	cl.Verdict.Level = verify.Safe
	cl.Verdict.Findings[0].Reason = "mutated"
	if orig.Verdict.Level != verify.Unsafe || orig.Verdict.Findings[0].Reason != "r" {
		t.Errorf("clone shares verdict storage with the original: %+v", orig.Verdict)
	}
}
