// Command graph2par analyzes the loops of a C source file: it predicts
// parallelism with the trained Graph2Par model, suggests OpenMP pragmas,
// and cross-checks against the reimplemented autoPar, PLUTO and DiscoPoP.
//
// Usage:
//
//	graph2par [-model ckpt] [-save ckpt] [-scale 0.02] [-epochs 6] file.c ...
//
// Without -model, a model is trained from scratch on a freshly generated
// OMP_Serial corpus (a few seconds at the default scale); -save persists it
// for reuse.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"graph2par"
	"graph2par/internal/profiling"
)

func main() {
	modelPath := flag.String("model", "", "load a trained checkpoint instead of training")
	savePath := flag.String("save", "", "save the (possibly fresh) model to this path")
	scale := flag.Float64("scale", 0.02, "OMP_Serial scale factor for from-scratch training")
	epochs := flag.Int("epochs", 6, "training epochs")
	seed := flag.Uint64("seed", 1234, "training seed")
	workers := flag.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS)")
	trainWorkers := flag.Int("train-workers", 0, "data-parallel training workers (0 = GOMAXPROCS); any value trains bit-identically")
	doVerify := flag.Bool("verify", false, "statically verify every suggested pragma and print the verdict")
	doRewrite := flag.Bool("rewrite", false, "plan a verified source-to-source rewrite for every predicted-parallel loop and print its status")
	rewriteOut := flag.String("rewrite-out", "", "write the transformed source of every input into this directory (implies -rewrite)")
	dotDir := flag.String("dot", "", "write one Graphviz .dot file per loop to this directory")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run (training + analysis) to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: graph2par [flags] file.c ...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	prof, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graph2par:", err)
		os.Exit(1)
	}
	// os.Exit skips defers, so every exit below goes through fail/finish.
	fail := func() {
		prof.Stop()
		os.Exit(1)
	}

	engine, err := graph2par.NewEngine(graph2par.EngineConfig{
		ModelPath:    *modelPath,
		TrainScale:   *scale,
		Epochs:       *epochs,
		Seed:         *seed,
		Workers:      *workers,
		TrainWorkers: *trainWorkers,
		Verify:       *doVerify,
		Rewrite:      *doRewrite || *rewriteOut != "",
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "graph2par:", err)
		fail()
	}
	if *savePath != "" {
		if err := engine.Save(*savePath); err != nil {
			fmt.Fprintln(os.Stderr, "graph2par: saving model:", err)
			fail()
		}
		fmt.Println("model saved to", *savePath)
	}

	// Read every file up front and analyze the whole batch in one
	// concurrent AnalyzeFiles pass; printing stays in argument order.
	exit := 0
	sources := map[string]string{}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graph2par:", err)
			exit = 1
			continue
		}
		sources[path] = string(src)
	}
	byFile, err := engine.AnalyzeFiles(sources)
	if err != nil {
		fmt.Fprintln(os.Stderr, err) // already prefixed graph2par:
		exit = 1
	}
	for _, path := range flag.Args() {
		reports, ok := byFile[path]
		if !ok {
			continue // unreadable or unparsable, already reported
		}
		fmt.Printf("== %s: %d loops ==\n", path, len(reports))
		for i, r := range reports {
			fmt.Print(r.Format())
			if *dotDir != "" {
				name := fmt.Sprintf("%s/loop_%02d_line%d.dot", *dotDir, i+1, r.Line)
				if err := os.WriteFile(name, []byte(r.DOT), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "graph2par: writing dot:", err)
					exit = 1
				}
			}
		}
	}
	if *rewriteOut != "" {
		if err := os.MkdirAll(*rewriteOut, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "graph2par:", err)
			fail()
		}
		for _, path := range flag.Args() {
			src, ok := sources[path]
			if !ok {
				continue
			}
			res, err := engine.RewriteSource(src)
			if err != nil {
				fmt.Fprintln(os.Stderr, "graph2par:", err)
				exit = 1
				continue
			}
			dst := filepath.Join(*rewriteOut, filepath.Base(path))
			if err := os.WriteFile(dst, []byte(res.Output), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "graph2par:", err)
				exit = 1
			}
		}
	}
	if err := prof.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "graph2par:", err)
		exit = 1
	}
	os.Exit(exit)
}
