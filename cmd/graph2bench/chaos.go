// Chaos mode: -chaos boots a multi-replica in-process fleet sharing one
// trained checkpoint, drives open-loop load at the survivors while one
// replica is killed and later restarted mid-run, and gates on the
// fault-tolerance contract:
//
//   - zero server 5xx and zero transport failures at the load-facing
//     replicas (faults degrade to local recompute, never to errors);
//   - every 429 is a shed/rate-limit with Retry-After (no silent drops);
//   - responses stay byte-identical to a local recompute on the
//     reference model, before, during and after the fault;
//   - the restarted replica rejoins (survivors see it live again) and
//     recovers its shard from its co-owners (its cold cache serves the
//     corpus with peer hits, not wholesale recomputation).
//
// The peer transports optionally route through internal/faultinject
// (-chaos-fault-rate) so a soak can add deterministic latency storms on
// top of the kill/restart.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graph2par"
	"graph2par/internal/faultinject"
	"graph2par/internal/peercache"
	"graph2par/internal/serve"
)

// chaosConfig is the -chaos run plan.
type chaosConfig struct {
	replicas    int
	killAt      time.Duration
	restartAt   time.Duration
	corpusSize  int
	work        int
	qps         float64
	duration    time.Duration
	concurrency int
	scale       float64
	epochs      int
	seed        uint64
	cacheSize   int
	faultSeed   uint64
	faultRate   float64
	jsonOut     string
	benchOut    string
}

// chaosProbeInterval is the fleet's health-probe period in chaos runs:
// short, so detection and rejoin both complete well inside the run.
const chaosProbeInterval = 100 * time.Millisecond

// chaosNode is one replica of the in-process fleet.
type chaosNode struct {
	engine *graph2par.Engine
	client *peercache.Client
	server *http.Server
	base   string
}

// chaosFleet owns the replicas and the shared checkpoint.
type chaosFleet struct {
	ckpt  string
	addrs []string
	urls  []string
	inj   *faultinject.Injector

	mu    sync.Mutex
	nodes []*chaosNode
}

// chaosRun executes the whole chaos scenario and returns the process
// exit code.
func chaosRun(cfg chaosConfig) int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "graph2bench: chaos:", err)
		return 1
	}
	if cfg.replicas < 3 {
		return fail(fmt.Errorf("-chaos-replicas must be >= 3 (got %d): the scenario kills one replica and needs a surviving owner pair", cfg.replicas))
	}
	if !(cfg.killAt < cfg.restartAt && cfg.restartAt < cfg.duration) {
		return fail(fmt.Errorf("need -chaos-kill-at < -chaos-restart-at < -duration (got %s, %s, %s)",
			cfg.killAt, cfg.restartAt, cfg.duration))
	}

	// The reference model: trained once, saved for the fleet, and kept
	// un-wired so its answers are pure local recomputes.
	trainer, err := graph2par.NewEngine(graph2par.EngineConfig{
		TrainScale: cfg.scale, Epochs: cfg.epochs, Seed: cfg.seed,
		CacheSize: cfg.cacheSize, Quiet: true,
	})
	if err != nil {
		return fail(err)
	}
	dir, err := os.MkdirTemp("", "graph2bench-chaos-")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "fleet.ckpt")
	if err := trainer.Save(ckpt); err != nil {
		return fail(err)
	}

	corpus := make([]string, cfg.corpusSize)
	reference := make([]string, cfg.corpusSize)
	for i := range corpus {
		corpus[i] = syntheticSource(uint64(i), cfg.work)
		reports, err := trainer.AnalyzeSource(corpus[i])
		if err != nil {
			return fail(fmt.Errorf("reference analysis of file %d: %w", i, err))
		}
		reference[i] = marshalStripped(reports)
	}

	fleet := &chaosFleet{ckpt: ckpt}
	if cfg.faultRate > 0 {
		// Deterministic injected latency on peer exchanges, on top of the
		// kill/restart: the soak's "slow network" dial.
		fleet.inj = faultinject.New(cfg.faultSeed, faultinject.Rule{
			Kind: faultinject.Latency, Rate: cfg.faultRate, Delay: 25 * time.Millisecond,
		})
	}
	for i := 0; i < cfg.replicas; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		fleet.addrs = append(fleet.addrs, ln.Addr().String())
		fleet.urls = append(fleet.urls, "http://"+ln.Addr().String())
		ln.Close()
	}
	for i := 0; i < cfg.replicas; i++ {
		if _, err := fleet.boot(i); err != nil {
			return fail(err)
		}
	}
	defer fleet.shutdown()

	victim := cfg.replicas - 1
	targets := fleet.urls[:victim] // load goes to the survivors only

	// The fault schedule runs concurrently with the load.
	var restarted sync.WaitGroup
	restarted.Add(1)
	var restartErr error
	time.AfterFunc(cfg.killAt, func() { fleet.kill(victim) })
	time.AfterFunc(cfg.restartAt, func() {
		defer restarted.Done()
		_, restartErr = fleet.boot(victim)
	})

	fmt.Printf("graph2bench: chaos: %d replicas, victim %s killed at %s, restarted at %s, load %g qps for %s at %d survivors\n",
		cfg.replicas, fleet.urls[victim], cfg.killAt, cfg.restartAt, cfg.qps, cfg.duration, len(targets))
	outcomes, sent, dropped, elapsed := runMulti(targets, func(i uint64) string {
		return corpus[i%uint64(len(corpus))]
	}, cfg.qps, cfg.duration, cfg.concurrency)

	restarted.Wait()
	if restartErr != nil {
		return fail(fmt.Errorf("restarting the victim: %w", restartErr))
	}
	// Let the probe loops finish rejoin detection: Down → Probing →
	// Healthy needs two consecutive probe passes.
	time.Sleep(4 * chaosProbeInterval)

	rep := summarize(outcomes, sent, dropped, elapsed)
	rep.Config = configEcho{
		URL: strings.Join(targets, ","), QPS: cfg.qps, Duration: cfg.duration.String(),
		Concurrency: cfg.concurrency,
		Workload:    fmt.Sprintf("chaos (%d replicas, %d-file corpus, %d loops/file)", cfg.replicas, cfg.corpusSize, cfg.work),
		InProcess:   true,
	}
	failed := chaosGates(&rep, fleet, victim, corpus, reference)

	if cfg.benchOut != "" {
		if err := writeBenchLines(cfg.benchOut, rep); err != nil {
			return fail(err)
		}
	}
	raw, _ := json.MarshalIndent(rep, "", "  ")
	raw = append(raw, '\n')
	if cfg.jsonOut != "" {
		if err := os.WriteFile(cfg.jsonOut, raw, 0o644); err != nil {
			return fail(err)
		}
		for _, g := range rep.Gates {
			fmt.Println(g)
		}
	} else {
		os.Stdout.Write(raw)
	}
	if failed {
		return 1
	}
	return 0
}

// chaosGates evaluates the fault-tolerance contract after the run.
func chaosGates(rep *report, fleet *chaosFleet, victim int, corpus, reference []string) bool {
	failed := false
	addGate := func(ok bool, format string, args ...any) {
		verdict := "PASS: "
		if !ok {
			verdict = "FAIL: "
			failed = true
		}
		rep.Gates = append(rep.Gates, verdict+fmt.Sprintf(format, args...))
	}

	// Ingress contract under faults: no 5xx, no transport failures, and
	// any 429 is an orderly shed with Retry-After.
	addGate(rep.Counts.Errors5xx == 0, "server 5xx responses during chaos: %d (want 0)", rep.Counts.Errors5xx)
	addGate(rep.Counts.Transport == 0, "transport failures at survivors: %d (want 0)", rep.Counts.Transport)
	addGate(rep.Counts.MissingRetry == 0, "429s without Retry-After: %d (want 0)", rep.Counts.MissingRetry)

	// The survivors detected the rejoin: every peer is live again.
	nodes := fleet.snapshot()
	for i, n := range nodes {
		if i == victim || n == nil {
			continue
		}
		st := n.client.Stats()
		addGate(st.Live == st.Peers, "replica %d sees %d/%d peers live after rejoin", i, st.Live, st.Peers)
	}

	// Correctness: every corpus file re-served by a survivor AND by the
	// restarted victim matches the reference model byte for byte.
	for _, idx := range []int{0, victim} {
		n := nodes[idx]
		if n == nil {
			addGate(false, "replica %d is not running after the chaos run", idx)
			continue
		}
		diverged := 0
		for i, src := range corpus {
			got, err := analyzeOnce(n.base, src)
			if err != nil {
				addGate(false, "replica %d failed to serve file %d post-chaos: %v", idx, i, err)
				diverged = -1
				break
			}
			if got != reference[i] {
				diverged++
			}
		}
		if diverged >= 0 {
			addGate(diverged == 0, "replica %d post-chaos divergence: %d/%d files differ from local recompute", idx, diverged, len(corpus))
		}
	}

	// Recovery: the restarted victim's cold cache came back from its
	// co-owners — the verification pass above must have produced peer
	// hits, not wholesale recomputation.
	if n := nodes[victim]; n != nil {
		st := n.client.Stats()
		addGate(st.Hits > 0, "restarted replica recovered %d cache entries from peers (want > 0)", st.Hits)
		rep.Gates = append(rep.Gates, fmt.Sprintf(
			"info: restarted replica peer stats: hits=%d misses=%d errors=%d retries=%d breakerSkips=%d",
			st.Hits, st.Misses, st.Errors, st.Retries, st.BreakerSkips))
	}
	return failed
}

// boot starts (or restarts, on its original address) replica i: a fresh
// engine from the shared checkpoint — a restart deliberately loses the
// in-memory cache — plus its peer client and HTTP server.
func (f *chaosFleet) boot(i int) (*chaosNode, error) {
	engine, err := graph2par.NewEngine(graph2par.EngineConfig{
		ModelPath: f.ckpt, Quiet: true, CacheSize: 4096,
	})
	if err != nil {
		return nil, err
	}
	var peers []string
	for j, u := range f.urls {
		if j != i {
			peers = append(peers, u)
		}
	}
	var transport http.RoundTripper
	if f.inj != nil {
		transport = f.inj.Transport(nil)
	}
	client, err := peercache.New(peercache.Config{
		Self:          f.urls[i],
		Peers:         peers,
		Fingerprint:   engine.Fingerprint(),
		ProbeInterval: chaosProbeInterval,
		ProbeTimeout:  chaosProbeInterval / 2,
		Transport:     transport,
	})
	if err != nil {
		return nil, err
	}
	engine.SetCacheFiller(client.Fill)
	engine.SetCacheWarmer(client.Warm)

	// On a restart the old listener may take a moment to fully release
	// the address.
	var ln net.Listener
	for attempt := 0; ; attempt++ {
		ln, err = net.Listen("tcp", f.addrs[i])
		if err == nil {
			break
		}
		if attempt >= 20 {
			client.Close()
			return nil, fmt.Errorf("rebinding %s: %w", f.addrs[i], err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	srv := &http.Server{Handler: serve.New(engine).Handler()}
	go func() { _ = srv.Serve(ln) }()

	node := &chaosNode{engine: engine, client: client, server: srv, base: f.urls[i]}
	f.mu.Lock()
	for len(f.nodes) <= i {
		f.nodes = append(f.nodes, nil)
	}
	f.nodes[i] = node
	f.mu.Unlock()
	return node, nil
}

// kill hard-stops replica i: listener and live connections closed at
// once, exactly like a process death as the rest of the fleet sees it.
func (f *chaosFleet) kill(i int) {
	f.mu.Lock()
	node := f.nodes[i]
	f.nodes[i] = nil
	f.mu.Unlock()
	if node == nil {
		return
	}
	_ = node.server.Close()
	node.client.Close()
}

// snapshot returns the current node slice copy.
func (f *chaosFleet) snapshot() []*chaosNode {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*chaosNode(nil), f.nodes...)
}

// shutdown stops every running replica.
func (f *chaosFleet) shutdown() {
	for i := range f.snapshot() {
		f.kill(i)
	}
}

// runMulti is the open-loop driver of run(), fanned over several target
// replicas round-robin (the load balancer a real fleet would have).
func runMulti(targets []string, gen func(uint64) string, qps float64, duration time.Duration, concurrency int) ([]outcome, uint64, uint64, float64) {
	if qps <= 0 {
		qps = 1
	}
	interval := time.Duration(float64(time.Second) / qps)
	client := &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        concurrency,
			MaxIdleConnsPerHost: concurrency,
		},
	}

	var (
		mu       sync.Mutex
		outcomes []outcome
		wg       sync.WaitGroup
		sent     atomic.Uint64
		dropped  atomic.Uint64
	)
	sem := make(chan struct{}, concurrency)
	start := time.Now()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.After(duration)

	var i uint64
loop:
	for {
		select {
		case <-deadline:
			break loop
		case <-ticker.C:
			select {
			case sem <- struct{}{}:
			default:
				dropped.Add(1)
				i++
				continue
			}
			sent.Add(1)
			src := gen(i)
			target := targets[i%uint64(len(targets))]
			i++
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				o := exchange(client, target, src, 0)
				mu.Lock()
				outcomes = append(outcomes, o)
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	return outcomes, sent.Load(), dropped.Load(), time.Since(start).Seconds()
}

// analyzeOnce POSTs one source and returns the canonical marshalling of
// the response reports, for byte-identity comparison against the
// reference model.
func analyzeOnce(base, src string) (string, error) {
	body, _ := json.Marshal(requestBody{Source: src, ClientID: "graph2bench-chaos"})
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	var parsed struct {
		Reports []graph2par.LoopReport `json:"reports"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
		return "", err
	}
	return marshalStripped(parsed.Reports), nil
}

// marshalStripped canonicalizes reports for comparison: the server
// strips the bulky DOT rendering unless asked, so the reference side
// must too.
func marshalStripped(reports []graph2par.LoopReport) string {
	out := make([]graph2par.LoopReport, len(reports))
	copy(out, reports)
	for i := range out {
		out[i].DOT = ""
	}
	j, _ := json.Marshal(out)
	return string(j)
}
