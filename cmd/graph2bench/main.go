// Command graph2bench is an open-loop load and latency harness for the
// graph2serve v1 API. Unlike a closed-loop driver (whose request rate
// collapses to whatever the server sustains, hiding queueing), it fires
// requests at a fixed arrival rate regardless of completions — the only
// schedule a production ingress actually faces — and reports the
// latency distribution (p50/p90/p99/p999), the shed rate and the error
// rates as JSON plus `go test -bench`-format lines that cmd/benchjson
// can summarize and gate.
//
// Usage (against a running server):
//
//	graph2bench -url http://localhost:8080 -qps 50 -duration 10s
//
// Usage (self-contained, as CI runs it):
//
//	graph2bench -inprocess -qps 40 -duration 5s \
//	  -bench-out bench_serve.txt -json-out serve_load.json
//
// -inprocess trains a small engine and serves it from this process on a
// loopback port, so the harness needs no orchestration — the numbers
// include the real HTTP stack, loopback transport included.
//
// Each request is a distinct source file by default (a unique integer
// literal per request defeats the content-addressed cache), so the load
// exercises the full analysis pipeline; -corpus replays .c files from a
// directory instead, and -repeat re-sends one source (pure cache-hit
// serving). Status accounting follows the v1 API contract: 429 is
// load-shedding or rate-limiting (by error code), 504 is the client's
// own deadline budget expiring (counted apart from server 5xx — a
// correctly shedding server under overload emits zero 5xx).
//
// Gates (exit nonzero on violation, for CI):
//
//	-gate-p99 100ms   p99 of successful requests must stay under this
//	-require-shed     at least one 429 must occur, and every 429 must
//	                  carry a Retry-After header (overload runs)
//	-max-5xx 0        at most this many server 5xx responses
//
// Chaos mode (-chaos) boots an in-process replica fleet sharing one
// checkpoint, kills and restarts one replica mid-load, and gates on the
// fault-tolerance contract (zero 5xx, shed-only 429s, byte-identical
// responses, peer-cache recovery after the restart) — see chaos.go.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graph2par"
	"graph2par/internal/serve"
)

// requestBody is the v1 request envelope subset the harness sends.
type requestBody struct {
	Source     string `json:"source"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
	ClientID   string `json:"client_id,omitempty"`
}

// report is the JSON document graph2bench emits.
type report struct {
	Config    configEcho  `json:"config"`
	Counts    counts      `json:"counts"`
	Rates     rates       `json:"rates"`
	LatencyMS percentiles `json:"latencyMs"`    // successful (200) requests
	AllMS     percentiles `json:"allLatencyMs"` // every completed exchange
	Elapsed   float64     `json:"elapsedSeconds"`
	Gates     []string    `json:"gates,omitempty"`
}

type configEcho struct {
	URL         string  `json:"url"`
	QPS         float64 `json:"qps"`
	Duration    string  `json:"duration"`
	Concurrency int     `json:"concurrency"`
	DeadlineMS  int64   `json:"deadlineMs,omitempty"`
	Workload    string  `json:"workload"`
	InProcess   bool    `json:"inprocess,omitempty"`
}

type counts struct {
	Sent          uint64 `json:"sent"`
	OK            uint64 `json:"ok"`
	Shed          uint64 `json:"shed"`          // 429 code "overloaded"
	RateLimited   uint64 `json:"rateLimited"`   // 429 code "rate_limited"
	Deadline      uint64 `json:"deadline"`      // 504 — the client's own budget
	Errors4xx     uint64 `json:"errors4xx"`     // other 4xx
	Errors5xx     uint64 `json:"errors5xx"`     // server failures (the overload gate pins 0)
	Transport     uint64 `json:"transport"`     // connection/timeout failures
	ClientDropped uint64 `json:"clientDropped"` // arrivals beyond the concurrency cap
	MissingRetry  uint64 `json:"missingRetryAfter"`
}

type rates struct {
	Shed  float64 `json:"shed"`
	Error float64 `json:"error"` // transport + 4xx (minus 429) + 5xx over sent
}

type percentiles struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
}

// outcome is one completed exchange.
type outcome struct {
	status     int
	code       string // v1 error envelope code ("" on success)
	latency    time.Duration
	transport  bool
	retryAfter bool
}

func main() {
	url := flag.String("url", "", "target server base URL (mutually exclusive with -inprocess)")
	inprocess := flag.Bool("inprocess", false, "train a small engine and serve it in-process on a loopback port")
	qps := flag.Float64("qps", 50, "open-loop arrival rate, requests/second")
	duration := flag.Duration("duration", 5*time.Second, "how long to generate load")
	concurrency := flag.Int("concurrency", 256, "client-side cap on in-flight requests; arrivals beyond it are counted clientDropped, preserving the open loop")
	deadlineMS := flag.Int64("deadline-ms", 0, "per-request deadline_ms sent in the envelope (0 = none)")
	corpus := flag.String("corpus", "", "directory of .c files to replay round-robin (default: synthetic distinct sources)")
	repeat := flag.Bool("repeat", false, "send one fixed source every time (pure cache-hit load) instead of distinct sources")
	work := flag.Int("work", 3, "loops per synthetic source file; overload runs raise this until per-request service time exceeds 1/qps, so the offered load genuinely outruns capacity")
	benchOut := flag.String("bench-out", "", "write go-bench-format latency lines here (for cmd/benchjson)")
	jsonOut := flag.String("json-out", "", "write the JSON report here (default: stdout)")
	gateP99 := flag.Duration("gate-p99", 0, "fail unless p99 of successful requests is under this (0 disables)")
	requireShed := flag.Bool("require-shed", false, "fail unless shedding engaged (≥1 overloaded 429) and every 429 carried Retry-After")
	max5xx := flag.Int64("max-5xx", -1, "fail when server 5xx responses exceed this (-1 disables)")
	// In-process server knobs (mirroring graph2serve's).
	scale := flag.Float64("scale", 0.008, "in-process training scale")
	epochs := flag.Int("epochs", 2, "in-process training epochs")
	seed := flag.Uint64("seed", 11, "in-process training seed")
	cacheSize := flag.Int("cache", 4096, "in-process analysis cache capacity")
	maxInflight := flag.Int("max-inflight", 0, "in-process admission slots (0 disables admission control)")
	maxQueue := flag.Int("max-queue", 0, "in-process admission queue watermark")
	batchWindow := flag.Duration("batch-window", 0, "in-process micro-batch window (0 disables)")
	// Chaos mode: an in-process fleet with a kill/restart fault schedule.
	chaos := flag.Bool("chaos", false, "boot an in-process replica fleet, kill and restart one replica mid-load, and gate on the fault-tolerance contract (see chaos.go)")
	chaosReplicas := flag.Int("chaos-replicas", 3, "fleet size for -chaos (>= 3)")
	chaosKillAt := flag.Duration("chaos-kill-at", 2*time.Second, "when to kill the victim replica, from load start")
	chaosRestartAt := flag.Duration("chaos-restart-at", 4*time.Second, "when to restart the victim (cold cache, same address)")
	chaosCorpus := flag.Int("chaos-corpus", 24, "distinct files cycled by the chaos workload (repeats engage the peer cache tier)")
	chaosFaultSeed := flag.Uint64("chaos-fault-seed", 1, "deterministic seed for injected peer-exchange faults")
	chaosFaultRate := flag.Float64("chaos-fault-rate", 0, "probability of injected latency per peer exchange (0 disables fault injection; kill/restart still happens)")
	flag.Parse()

	if *chaos {
		os.Exit(chaosRun(chaosConfig{
			replicas:    *chaosReplicas,
			killAt:      *chaosKillAt,
			restartAt:   *chaosRestartAt,
			corpusSize:  *chaosCorpus,
			work:        *work,
			qps:         *qps,
			duration:    *duration,
			concurrency: *concurrency,
			scale:       *scale,
			epochs:      *epochs,
			seed:        *seed,
			cacheSize:   *cacheSize,
			faultSeed:   *chaosFaultSeed,
			faultRate:   *chaosFaultRate,
			jsonOut:     *jsonOut,
			benchOut:    *benchOut,
		}))
	}

	if (*url == "") == !*inprocess {
		fmt.Fprintln(os.Stderr, "graph2bench: exactly one of -url or -inprocess is required")
		os.Exit(2)
	}

	target := *url
	var shutdown func()
	if *inprocess {
		var err error
		target, shutdown, err = startInProcess(*scale, *epochs, *seed, *cacheSize, *maxInflight, *maxQueue, *batchWindow)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graph2bench:", err)
			os.Exit(1)
		}
		defer shutdown()
	}
	target = strings.TrimRight(target, "/")

	gen, workload, err := sourceGenerator(*corpus, *repeat, *work)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graph2bench:", err)
		os.Exit(1)
	}

	outcomes, sent, dropped, elapsed := run(target, gen, *qps, *duration, *concurrency, *deadlineMS)

	rep := summarize(outcomes, sent, dropped, elapsed)
	rep.Config = configEcho{
		URL: target, QPS: *qps, Duration: duration.String(), Concurrency: *concurrency,
		DeadlineMS: *deadlineMS, Workload: workload, InProcess: *inprocess,
	}

	failed := applyGates(&rep, *gateP99, *requireShed, *max5xx)

	if *benchOut != "" {
		if err := writeBenchLines(*benchOut, rep); err != nil {
			fmt.Fprintln(os.Stderr, "graph2bench:", err)
			os.Exit(1)
		}
	}
	raw, _ := json.MarshalIndent(rep, "", "  ")
	raw = append(raw, '\n')
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, raw, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "graph2bench:", err)
			os.Exit(1)
		}
		// The human-readable verdicts still go to stdout.
		for _, g := range rep.Gates {
			fmt.Println(g)
		}
	} else {
		os.Stdout.Write(raw)
	}
	if failed {
		os.Exit(1)
	}
}

// startInProcess trains a small engine and serves it on a loopback port.
func startInProcess(scale float64, epochs int, seed uint64, cacheSize, maxInflight, maxQueue int, batchWindow time.Duration) (string, func(), error) {
	engine, err := graph2par.NewEngine(graph2par.EngineConfig{
		TrainScale: scale, Epochs: epochs, Seed: seed, CacheSize: cacheSize, Quiet: true,
	})
	if err != nil {
		return "", nil, err
	}
	s := serve.NewWithConfig(engine, serve.ServeConfig{
		MaxInflight: maxInflight, MaxQueue: maxQueue, BatchWindow: batchWindow,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: s.Handler()}
	srv.RegisterOnShutdown(s.Close)
	go func() { _ = srv.Serve(ln) }()
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// sourceGenerator returns a per-request source function and a label for
// the report. The synthetic default makes every request a distinct file
// (unique integer literal) so the content-addressed cache cannot answer
// and the harness measures real pipeline work.
func sourceGenerator(corpusDir string, repeat bool, work int) (func(i uint64) string, string, error) {
	if work < 1 {
		work = 1
	}
	if corpusDir != "" {
		files, err := filepath.Glob(filepath.Join(corpusDir, "*.c"))
		if err != nil {
			return nil, "", err
		}
		if len(files) == 0 {
			return nil, "", fmt.Errorf("no .c files in %s", corpusDir)
		}
		sort.Strings(files)
		sources := make([]string, len(files))
		for i, f := range files {
			raw, err := os.ReadFile(f)
			if err != nil {
				return nil, "", err
			}
			sources[i] = string(raw)
		}
		return func(i uint64) string { return sources[i%uint64(len(sources))] },
			fmt.Sprintf("corpus:%s (%d files)", corpusDir, len(sources)), nil
	}
	if repeat {
		src := syntheticSource(0, work)
		return func(uint64) string { return src }, "repeat (cache-hit)", nil
	}
	return func(i uint64) string { return syntheticSource(i, work) },
		fmt.Sprintf("synthetic distinct (cache-miss, %d loops)", work), nil
}

// syntheticSource renders one multi-loop file of `work` analyzable loops;
// the literal i makes each request content-distinct (defeating the
// content-addressed cache), and each loop costs the server one graph
// construction plus an HGT forward pass, so `work` is the per-request
// service-time dial.
func syntheticSource(i uint64, work int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "int main() {\n    int a[64], b[64];\n    int k, s = %d;\n", i)
	for j := 0; j < work; j++ {
		fmt.Fprintf(&b, "    for (k = 0; k < 64; k++) a[k] = b[k] * %d + %d;\n", j+1, i)
	}
	b.WriteString("    for (k = 0; k < 64; k++) s += a[k];\n    return s;\n}\n")
	return b.String()
}

// run generates the open-loop arrival schedule and collects outcomes.
func run(target string, gen func(uint64) string, qps float64, duration time.Duration, concurrency int, deadlineMS int64) ([]outcome, uint64, uint64, float64) {
	if qps <= 0 {
		qps = 1
	}
	interval := time.Duration(float64(time.Second) / qps)
	client := &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        concurrency,
			MaxIdleConnsPerHost: concurrency,
		},
	}

	var (
		mu       sync.Mutex
		outcomes []outcome
		wg       sync.WaitGroup
		sent     atomic.Uint64
		dropped  atomic.Uint64
	)
	sem := make(chan struct{}, concurrency)
	start := time.Now()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.After(duration)

	var i uint64
loop:
	for {
		select {
		case <-deadline:
			break loop
		case <-ticker.C:
			// Open loop: the arrival happens now whether or not capacity is
			// free. Beyond the client cap the arrival is counted, not queued
			// (queueing client-side would quietly turn this into a closed
			// loop).
			select {
			case sem <- struct{}{}:
			default:
				dropped.Add(1)
				i++
				continue
			}
			sent.Add(1)
			src := gen(i)
			i++
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				o := exchange(client, target, src, deadlineMS)
				mu.Lock()
				outcomes = append(outcomes, o)
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	return outcomes, sent.Load(), dropped.Load(), time.Since(start).Seconds()
}

// exchange performs one POST /v1/analyze and classifies the result.
func exchange(client *http.Client, target, src string, deadlineMS int64) outcome {
	body, _ := json.Marshal(requestBody{Source: src, DeadlineMS: deadlineMS, ClientID: "graph2bench"})
	t0 := time.Now()
	resp, err := client.Post(target+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		return outcome{transport: true, latency: time.Since(t0)}
	}
	defer resp.Body.Close()
	o := outcome{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After") != ""}
	if resp.StatusCode != http.StatusOK {
		var env struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&env)
		o.code = env.Error.Code
	} else {
		// Drain so the connection is reusable; the decoded content is not
		// needed for timing.
		var sink json.RawMessage
		_ = json.NewDecoder(resp.Body).Decode(&sink)
	}
	o.latency = time.Since(t0)
	return o
}

// summarize folds outcomes into the report counters and distributions.
func summarize(outcomes []outcome, sent, dropped uint64, elapsed float64) report {
	var c counts
	c.Sent = sent
	c.ClientDropped = dropped
	var okLat, allLat []time.Duration
	for _, o := range outcomes {
		allLat = append(allLat, o.latency)
		switch {
		case o.transport:
			c.Transport++
		case o.status == http.StatusOK:
			c.OK++
			okLat = append(okLat, o.latency)
		case o.status == http.StatusTooManyRequests:
			if o.code == "rate_limited" {
				c.RateLimited++
			} else {
				c.Shed++
			}
			if !o.retryAfter {
				c.MissingRetry++
			}
		case o.status == http.StatusGatewayTimeout:
			c.Deadline++
		case o.status >= 500:
			c.Errors5xx++
		case o.status >= 400:
			c.Errors4xx++
		}
	}
	var r rates
	if sent > 0 {
		r.Shed = float64(c.Shed+c.RateLimited) / float64(sent)
		r.Error = float64(c.Transport+c.Errors4xx+c.Errors5xx) / float64(sent)
	}
	return report{
		Counts:    c,
		Rates:     r,
		LatencyMS: toPercentiles(okLat),
		AllMS:     toPercentiles(allLat),
		Elapsed:   elapsed,
	}
}

// toPercentiles computes the latency distribution in milliseconds.
func toPercentiles(lat []time.Duration) percentiles {
	if len(lat) == 0 {
		return percentiles{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return percentiles{
		Count: len(lat),
		P50:   ms(quantile(lat, 0.50)),
		P90:   ms(quantile(lat, 0.90)),
		P99:   ms(quantile(lat, 0.99)),
		P999:  ms(quantile(lat, 0.999)),
		Max:   ms(lat[len(lat)-1]),
	}
}

// quantile picks the nearest-rank element of a sorted slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// applyGates evaluates the CI gates, recording verdicts on the report
// and returning whether any failed.
func applyGates(rep *report, gateP99 time.Duration, requireShed bool, max5xx int64) bool {
	failed := false
	addGate := func(ok bool, format string, args ...any) {
		verdict := "PASS: "
		if !ok {
			verdict = "FAIL: "
			failed = true
		}
		rep.Gates = append(rep.Gates, verdict+fmt.Sprintf(format, args...))
	}
	if gateP99 > 0 {
		limit := float64(gateP99) / float64(time.Millisecond)
		if rep.LatencyMS.Count == 0 {
			addGate(false, "p99 gate: no successful requests to measure")
		} else {
			addGate(rep.LatencyMS.P99 <= limit, "p99 %.1fms vs limit %.1fms", rep.LatencyMS.P99, limit)
		}
	}
	if requireShed {
		addGate(rep.Counts.Shed > 0, "shedding engaged: %d overloaded 429s", rep.Counts.Shed)
		addGate(rep.Counts.MissingRetry == 0, "429s without Retry-After: %d", rep.Counts.MissingRetry)
	}
	if max5xx >= 0 {
		addGate(rep.Counts.Errors5xx <= uint64(max5xx), "server 5xx responses: %d (limit %d; 504 deadline budgets excluded: %d)",
			rep.Counts.Errors5xx, max5xx, rep.Counts.Deadline)
	}
	return failed
}

// writeBenchLines emits the latency distribution in the one-line format
// cmd/benchjson parses, as the BENCH_serve family: the percentile of
// successful request latency in ns/op, with n = the sample count.
func writeBenchLines(path string, rep report) error {
	if rep.LatencyMS.Count == 0 {
		return fmt.Errorf("no successful requests; nothing to write to %s", path)
	}
	var b strings.Builder
	line := func(name string, msVal float64) {
		fmt.Fprintf(&b, "%s %d %.0f ns/op\n", name, rep.LatencyMS.Count, msVal*float64(time.Millisecond))
	}
	line("BenchmarkServeP50", rep.LatencyMS.P50)
	line("BenchmarkServeP90", rep.LatencyMS.P90)
	line("BenchmarkServeP99", rep.LatencyMS.P99)
	line("BenchmarkServeP999", rep.LatencyMS.P999)
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
