// Command evaluate regenerates the paper's evaluation: every table and
// figure of the MLSys 2023 Graph2Par paper, plus the ablations listed in
// DESIGN.md.
//
// Usage:
//
//	evaluate -all                      # everything at the default scale
//	evaluate -table 2 -scale 0.05      # a single table, bigger corpus
//	evaluate -figure 2
//	evaluate -ablations
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"graph2par/internal/experiments"
	"graph2par/internal/profiling"
	"graph2par/internal/train"
)

func main() {
	scale := flag.Float64("scale", 0.02, "OMP_Serial scale factor")
	seed := flag.Uint64("seed", 1234, "experiment seed")
	epochs := flag.Int("epochs", 6, "training epochs")
	hidden := flag.Int("hidden", 48, "model hidden width")
	table := flag.Int("table", 0, "run a single table (1-5)")
	figure := flag.Int("figure", 0, "run a single figure (2)")
	workers := flag.Int("workers", 0, "worker pool size for the per-sample sweeps (0 = GOMAXPROCS)")
	trainWorkers := flag.Int("train-workers", 0, "data-parallel training workers (0 = GOMAXPROCS); any value trains bit-identically")
	all := flag.Bool("all", false, "run everything")
	verifier := flag.Bool("verifier", false, "run the static-verifier agreement/precision report")
	ablations := flag.Bool("ablations", false, "run the DESIGN.md ablations")
	appendix := flag.Bool("appendix", false, "run the appendix training-dynamics report")
	verbose := flag.Bool("v", false, "per-epoch training loss")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole evaluation to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	prof, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}

	opts := train.DefaultOptions()
	opts.Epochs = *epochs
	opts.Hidden = *hidden
	opts.Verbose = *verbose
	opts.Workers = *trainWorkers

	cfg := experiments.Config{Scale: *scale, Seed: *seed, TestFrac: 0.25, Training: opts, Workers: *workers}
	fmt.Printf("generating OMP_Serial at scale %.3f (seed %d)...\n", *scale, *seed)
	start := time.Now()
	suite := experiments.NewSuite(cfg)
	fmt.Printf("corpus: %d loops (train %d / test %d) in %v\n\n",
		len(suite.Corpus.Samples), len(suite.Train), len(suite.Test), time.Since(start).Round(time.Millisecond))

	ran := false
	runIf := func(want bool, name string, fn func() string) {
		if !want {
			return
		}
		ran = true
		t0 := time.Now()
		out := fn()
		fmt.Println(out)
		fmt.Printf("[%s took %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	runIf(*all || *table == 1, "table 1", func() string { return suite.Table1().Format() })
	runIf(*all || *figure == 2, "figure 2", func() string { return suite.Figure2().Format() })
	runIf(*all || *table == 2, "table 2", func() string { return suite.Table2().Format() })
	runIf(*all || *table == 3, "table 3", func() string { return suite.Table3().Format() })
	runIf(*all || *table == 4, "table 4", func() string { return suite.Table4().Format() })
	runIf(*all || *table == 5, "table 5", func() string { return suite.Table5().Format() })
	runIf(*all, "overhead (6.5)", func() string { return suite.Overhead().Format() })
	runIf(*all || *verifier, "static verifier", func() string { return suite.Verifier().Format() })
	runIf(*all, "case study (6.6)", func() string { return suite.CaseStudy().Format() })
	runIf(*ablations, "ablation edges", func() string { return suite.AblationEdges().Format() })
	runIf(*ablations, "ablation heterogeneity", func() string { return suite.AblationHeterogeneity().Format() })
	runIf(*ablations, "ablation capacity", func() string { return suite.AblationCapacity().Format() })
	runIf(*appendix, "appendix", func() string { return suite.Appendix().Format() })

	if !ran {
		prof.Stop()
		fmt.Fprintln(os.Stderr, "nothing selected: use -all, -table N, -figure 2, -ablations or -appendix")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := prof.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}
