// graph2verify statically verifies OpenMP pragma safety: it parses C
// sources, re-derives what the dependence analysis can prove about every
// loop, and checks each source pragma (or, for bare loops, the loop itself)
// against the verdict lattice safe < unknown < unsafe.
//
// Usage:
//
//	go run ./cmd/graph2verify examples/c
//	go run ./cmd/graph2verify -json examples/c | jq .
//	go run ./cmd/graph2verify -only structure,purity file.c
//	go run ./cmd/graph2verify -list
//
// Arguments are C files or directories (walked recursively for *.c).
// Exit status is 0 when every loop is safe or unknown, 1 when any loop is
// unsafe, 2 on operational errors (unparseable file, bad flags). Output is
// sorted by (file, line) and byte-identical across runs and -workers
// values, so CI can diff it against a golden file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"graph2par/internal/cli"
	"graph2par/internal/cparse"
	"graph2par/internal/parallel"
	"graph2par/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// fileResult is one source file's outcome: its loop verdicts, or the
// parse error that prevented them.
type fileResult struct {
	path  string
	loops []verify.LoopVerdict
	err   error
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("graph2verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit verdicts as a JSON array")
	list := fs.Bool("list", false, "list the check suite and exit")
	only := fs.String("only", "", "comma-separated check names to run (default: all)")
	workers := fs.Int("workers", 0, "worker goroutines for multi-file runs (0 = GOMAXPROCS)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: graph2verify [-json] [-only a,b] [-workers n] <file.c|dir>...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return cli.ExitClean
		}
		return cli.ExitError
	}

	checks := verify.Checks()
	if *list {
		for _, c := range checks {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name, c.Doc)
		}
		return cli.ExitClean
	}
	checks, err := cli.SelectOnly(checks, func(c *verify.Check) string { return c.Name }, *only, "check")
	if err != nil {
		fmt.Fprintf(stderr, "graph2verify: %v\n", err)
		return cli.ExitError
	}

	paths, err := cli.CollectSources(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "graph2verify: %v\n", err)
		return cli.ExitError
	}
	if len(paths) == 0 {
		fmt.Fprintf(stderr, "graph2verify: no C sources given\n")
		fs.Usage()
		return cli.ExitError
	}

	// Verify files concurrently into a slot-indexed result slice: output
	// order never depends on scheduling, only on the sorted path list.
	results := make([]fileResult, len(paths))
	parallel.ForEach(*workers, len(paths), func(i int) {
		results[i] = verifyPath(paths[i], checks)
	})

	var all []verify.LoopVerdict
	for _, r := range results {
		if r.err != nil {
			fmt.Fprintf(stderr, "graph2verify: %s: %v\n", r.path, r.err)
			return cli.ExitError
		}
		all = append(all, r.loops...)
	}

	unsafe := 0
	for _, v := range all {
		if v.Verdict.Level == verify.Unsafe {
			unsafe++
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []verify.LoopVerdict{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintf(stderr, "graph2verify: %v\n", err)
			return cli.ExitError
		}
	} else {
		for _, v := range all {
			line := fmt.Sprintf("%s:%d: [%s] %s loop", v.File, v.Line, v.Verdict.Level, v.Kind)
			if v.Verdict.Reason != "" {
				line += ": " + v.Verdict.Reason
			}
			fmt.Fprintln(stdout, line)
		}
		if unsafe > 0 {
			fmt.Fprintf(stderr, "graph2verify: %d unsafe loop(s) across %d file(s)\n",
				unsafe, len(paths))
		}
	}
	if unsafe > 0 {
		return cli.ExitFindings
	}
	return cli.ExitClean
}

// verifyPath parses one C file and verifies its loops.
func verifyPath(path string, checks []*verify.Check) fileResult {
	src, err := os.ReadFile(path)
	if err != nil {
		return fileResult{path: path, err: err}
	}
	file, err := cparse.ParseFile(string(src))
	if err != nil {
		return fileResult{path: path, err: err}
	}
	loops := verify.VerifyFileWith(file, checks)
	for i := range loops {
		loops[i].File = path
	}
	return fileResult{path: path, loops: loops}
}
