package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs the CLI with stdout/stderr redirected to temp files and
// returns the exit code plus both streams.
func capture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	dir := t.TempDir()
	mk := func(name string) *os.File {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	stdout, stderr := mk("stdout"), mk("stderr")
	code := run(args, stdout, stderr)
	stdout.Close()
	stderr.Close()
	rd := func(name string) string {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	return code, rd("stdout"), rd("stderr")
}

func writeSrc(t *testing.T, name, src string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const safeSrc = `void f(int n, double a[]) {
    for (int i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
}`

const unsafeSrc = `void f(int n, double a[]) {
    for (int i = 1; i < n; i++) { a[i] = a[i - 1]; }
}`

func TestExitCodes(t *testing.T) {
	code, out, _ := capture(t, writeSrc(t, "safe.c", safeSrc))
	if code != 0 {
		t.Fatalf("safe file: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "[safe]") {
		t.Errorf("missing safe verdict line:\n%s", out)
	}

	code, out, errOut := capture(t, writeSrc(t, "unsafe.c", unsafeSrc))
	if code != 1 {
		t.Fatalf("unsafe file: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "[unsafe]") || !strings.Contains(errOut, "1 unsafe loop(s)") {
		t.Errorf("missing unsafe report:\nstdout %s\nstderr %s", out, errOut)
	}

	if code, _, _ := capture(t, filepath.Join(t.TempDir(), "missing.c")); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	if code, _, _ := capture(t); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code, _, _ := capture(t, "-bogusflag"); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

func TestOnlySubset(t *testing.T) {
	// Restricting to the structure check hides the dependence violation.
	p := writeSrc(t, "rec.c", unsafeSrc)
	if code, out, _ := capture(t, "-only", "structure", p); code != 0 {
		t.Errorf("-only structure: exit %d\n%s", code, out)
	}
	if code, _, errOut := capture(t, "-only", "nope", p); code != 2 ||
		!strings.Contains(errOut, "unknown check") {
		t.Errorf("-only nope: exit %d, stderr %s", code, errOut)
	}
}

func TestList(t *testing.T) {
	code, out, _ := capture(t, "-list")
	if code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	for _, name := range []string{"structure", "dependence", "clauses", "purity", "alias"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list omits %q:\n%s", name, out)
		}
	}
}

// TestWorkerCountInvariance pins the acceptance criterion: the JSON output
// over a directory is byte-identical for every worker count.
func TestWorkerCountInvariance(t *testing.T) {
	dir := t.TempDir()
	srcs := map[string]string{
		"a_safe.c":   safeSrc,
		"b_unsafe.c": unsafeSrc,
		"c_while.c":  `void g(int n) { int i = 0; while (i < n) { i++; } }`,
		"d_extern.c": `void h(int n, double a[]) { for (int i = 0; i < n; i++) a[i] = ext(i); }`,
	}
	for name, src := range srcs {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var first string
	for _, w := range []int{1, 2, 4, 8} {
		code, out, _ := capture(t, "-json", "-workers", itoa(w), dir)
		if code != 1 {
			t.Fatalf("workers=%d: exit %d", w, code)
		}
		if first == "" {
			first = out
		} else if out != first {
			t.Fatalf("workers=%d output differs:\n%s\n--- vs ---\n%s", w, out, first)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
