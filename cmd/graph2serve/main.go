// Command graph2serve exposes the Graph2Par analysis pipeline as a
// long-running HTTP JSON service: the model is loaded (or trained) once
// at startup, then concurrent requests share the warm engine, its worker
// pool and its content-addressed analysis cache.
//
// Usage:
//
//	graph2serve [-addr :8080] [-model ckpt] [-scale 0.02] [-epochs 6]
//	            [-workers N] [-cache 4096] [-batch 16] [-batch-window 2ms]
//	            [-max-inflight N] [-max-queue N] [-rate R] [-burst B]
//	            [-max-body BYTES] [-peers url,url] [-self url]
//	            [-probe-interval 1s] [-replication 2] [-peer-retries 1]
//	            [-breaker-threshold 5] [-breaker-cooldown 2s] [-negative-ttl 1s]
//
// Endpoints (v1 API; the unversioned spellings are deprecated aliases):
//
//	POST /v1/analyze        {"source": "...", "options": {"dot": false}, "deadline_ms": 0, "client_id": ""}
//	POST /v1/analyze/batch  {"files": {"a.c": "...", "b.c": "..."}}
//	POST /v1/rewrite        {"source": "..."} (requires -rewrite)
//	GET  /v1/healthz
//	GET  /v1/stats
//	GET  /v1/cache/<key>    replica cache-peer protocol, pull side (see -peers)
//	POST /v1/cache/<key>    replica cache-peer protocol, push side (replication warming)
//
// Scale-out: starting each replica of a fleet with the same checkpoint
// (-model), its own -self URL and the other replicas under -peers turns
// the per-process analysis caches into a shared, fault-tolerant tier —
// a local miss asks the key's owning replicas (rendezvous hashing over
// the live fleet) before recomputing, locally computed reports
// replicate to the key's other owners, health probes evict dead
// replicas from the ownership ring, and per-peer circuit breakers with
// bounded retries keep a sick peer from taxing the request path.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for up to 10 seconds.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graph2par"
	"graph2par/internal/peercache"
	"graph2par/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelPath := flag.String("model", "", "load a trained checkpoint instead of training at startup")
	scale := flag.Float64("scale", 0.02, "OMP_Serial scale factor for from-scratch training")
	epochs := flag.Int("epochs", 6, "training epochs (from-scratch only)")
	seed := flag.Uint64("seed", 1234, "training seed (from-scratch only)")
	workers := flag.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS)")
	trainWorkers := flag.Int("train-workers", 0, "data-parallel training workers for from-scratch training (0 = GOMAXPROCS); any value trains bit-identically")
	cacheSize := flag.Int("cache", 4096, "analysis cache capacity in loop reports (0 disables)")
	batchSize := flag.Int("batch", 0, "inference batch size: loops per HGT forward pass (0 = default, 1 disables)")
	batchWindow := flag.Duration("batch-window", 0, "micro-batch window: coalesce concurrent /v1/analyze requests arriving within this duration into shared forward passes (0 disables)")
	maxBatch := flag.Int("max-batch", 0, "max requests coalesced per micro-batch window (0 = default)")
	maxBody := flag.Int64("max-body", 0, "max request-body bytes; larger bodies get 413 (0 = 16 MiB default)")
	maxInflight := flag.Int("max-inflight", 0, "admission control: max concurrently processed API requests (0 disables)")
	maxQueue := flag.Int("max-queue", 0, "admission queue watermark: requests waiting beyond this are shed with 429 (needs -max-inflight)")
	retryAfter := flag.Duration("retry-after", 0, "Retry-After hint on shed responses (0 = 1s default)")
	rate := flag.Float64("rate", 0, "per-client rate limit in requests/second, keyed on client id (0 disables)")
	burst := flag.Float64("burst", 0, "per-client burst allowance for -rate (0 = same as -rate)")
	peers := flag.String("peers", "", "comma-separated base URLs of the other replicas; local cache misses ask the key's owning replica before recomputing (requires -self)")
	self := flag.String("self", "", "this replica's own advertised base URL, as the peers list it (required with -peers)")
	peerTimeout := flag.Duration("peer-timeout", 0, "per-exchange timeout for peer cache fills (0 = 500ms default)")
	probeInterval := flag.Duration("probe-interval", 0, "peer health-probe period; down peers leave the ownership ring until they re-pass two probes (0 = 1s default, negative disables probing)")
	replication := flag.Int("replication", 0, "rendezvous owner-set size per cache key: locally computed reports replicate to this many owners (0 = 2 default, 1 disables replication)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive exchange failures that trip a peer's circuit breaker (0 = 5 default)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "how long a tripped breaker rejects exchanges before its half-open probe (0 = 2s default)")
	peerRetries := flag.Int("peer-retries", 0, "additional ranked owners a failed peer fill tries, with exponential backoff (0 = 1 default, negative disables)")
	negativeTTL := flag.Duration("negative-ttl", 0, "per-key suppression window after a failed or empty peer fill (0 = 1s default, negative disables)")
	doVerify := flag.Bool("verify", false, "statically verify every suggested pragma; verdicts ride the response reports")
	doRewrite := flag.Bool("rewrite", false, "enable the source-to-source rewrite stage and the POST /v1/rewrite endpoint")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof profiling endpoints under /debug/pprof/ (off by default; enable only on trusted networks)")
	quiet := flag.Bool("quiet", false, "suppress the training progress line")
	flag.Parse()

	engine, err := graph2par.NewEngine(graph2par.EngineConfig{
		ModelPath:    *modelPath,
		TrainScale:   *scale,
		Epochs:       *epochs,
		Seed:         *seed,
		Workers:      *workers,
		TrainWorkers: *trainWorkers,
		CacheSize:    *cacheSize,
		BatchSize:    *batchSize,
		Quiet:        *quiet,
		Verify:       *doVerify,
		Rewrite:      *doRewrite,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "graph2serve:", err)
		os.Exit(1)
	}

	cfg := serve.ServeConfig{
		BatchWindow: *batchWindow,
		MaxBatch:    *maxBatch,
		MaxBody:     *maxBody,
		MaxInflight: *maxInflight,
		MaxQueue:    *maxQueue,
		RetryAfter:  *retryAfter,
		RatePerSec:  *rate,
		RateBurst:   *burst,
	}
	if *peers != "" {
		if *self == "" {
			fmt.Fprintln(os.Stderr, "graph2serve: -peers requires -self (this replica's own base URL)")
			os.Exit(1)
		}
		if *cacheSize <= 0 {
			fmt.Fprintln(os.Stderr, "graph2serve: -peers requires a cache (-cache > 0)")
			os.Exit(1)
		}
		var list []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				list = append(list, p)
			}
		}
		peerClient, err := peercache.New(peercache.Config{
			Self:             *self,
			Peers:            list,
			Timeout:          *peerTimeout,
			Fingerprint:      engine.Fingerprint(),
			Replication:      *replication,
			ProbeInterval:    *probeInterval,
			BreakerThreshold: *breakerThreshold,
			BreakerCooldown:  *breakerCooldown,
			Retries:          *peerRetries,
			NegativeTTL:      *negativeTTL,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "graph2serve:", err)
			os.Exit(1)
		}
		defer peerClient.Close()
		engine.SetCacheFiller(peerClient.Fill)
		engine.SetCacheWarmer(peerClient.Warm)
		cfg.PeerStats = func() serve.PeerStats {
			st := peerClient.Stats()
			ps := serve.PeerStats{
				Peers: st.Peers, Live: st.Live,
				Hits: st.Hits, Misses: st.Misses, Errors: st.Errors,
				NegativeHits: st.NegativeHits, BreakerSkips: st.BreakerSkips, Retries: st.Retries,
				WarmsSent: st.WarmsSent, WarmErrors: st.WarmErrors, WarmDropped: st.WarmDropped,
			}
			for _, p := range st.PerPeer {
				ps.Replicas = append(ps.Replicas, serve.PeerReplica{
					Base: p.Base, State: p.State, Breaker: p.Breaker, Failures: p.Failures,
					Hits: p.Hits, Misses: p.Misses, Errors: p.Errors, Warms: p.Warms,
				})
			}
			return ps
		}
		if *modelPath == "" {
			fmt.Println("graph2serve: note: -peers without -model — peers only share cache entries when their fingerprints match (same -scale/-epochs/-seed, or a shared checkpoint)")
		}
		rep := *replication
		if rep == 0 {
			rep = peercache.DefaultReplication
		}
		fmt.Printf("graph2serve: peer cache tier enabled (%d peers, replication %d, fingerprint %.12s…)\n",
			len(peerClient.Peers()), rep, engine.Fingerprint())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	server := serve.NewWithConfig(engine, cfg)
	handler := server.Handler()
	if *pprofOn {
		// Opt-in live profiling: the pprof handlers are registered on an
		// explicit mux (never the default one), so without -pprof the
		// binary exposes nothing under /debug/.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		fmt.Println("graph2serve: pprof endpoints enabled at /debug/pprof/")
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	// A graceful drain must answer requests parked in an open micro-batch
	// window immediately, not after the window expires. Close (rather than
	// the one-shot Flush) also downgrades requests that slip in after the
	// flush to the direct engine path, so none can park in a new window
	// that nothing would dispatch before the drain deadline.
	srv.RegisterOnShutdown(server.Close)
	fmt.Printf("graph2serve: listening on %s (workers=%d, batch=%d, cache=%d, batch-window=%s)\n",
		*addr, engine.Workers(), engine.BatchSize(), *cacheSize, *batchWindow)
	if err := serve.ListenAndServe(ctx, srv, 10*time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "graph2serve:", err)
		os.Exit(1)
	}
	fmt.Println("graph2serve: shut down cleanly")
}
