// Command benchjson turns `go test -bench` output into a machine-readable
// JSON summary and optionally gates on a committed baseline, failing when
// a named benchmark regressed beyond a tolerance. It is the benchmark
// half of CI: the bench job pipes the AnalyzeFiles benchmark family
// through it to produce BENCH_pr3.json (the uploaded trajectory artifact)
// and to enforce that batched inference never quietly loses the speed it
// was added for.
//
// Usage:
//
//	go test -bench AnalyzeFiles -benchtime 3x -run '^$' . \
//	  | benchjson -out BENCH_pr3.json \
//	      -baseline BENCH_baseline.json -gate BenchmarkAnalyzeFilesBatched -max-regress 20 \
//	      -gate-ratio BenchmarkAnalyzeFilesBatched/BenchmarkAnalyzeFilesParallel -max-ratio 1.10
//
// The baseline gate compares ns/op of -gate in the fresh run against the
// baseline file and exits nonzero when current > baseline ×
// (1 + max-regress/100); a gate benchmark missing from the baseline is a
// warning, not a failure, so a new benchmark can land together with its
// first baseline. The ratio gate compares two benchmarks of the same
// run (machine-independent) and exits nonzero when
// ns/op(numerator) > ns/op(denominator) × max-ratio.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurement. BPerOp/AllocsPerOp are present
// only when the run used -benchmem; allocs/op is machine-independent, so
// it is the row the allocation-regression gates pin. HasMem records that
// the memory columns were actually measured — 0 allocs/op is a legitimate
// (and desirable) value, so the zero value cannot double as "missing".
type Result struct {
	N           int     `json:"n"` // iterations the timing averages over
	NsPerOp     float64 `json:"nsPerOp"`
	BPerOp      float64 `json:"bPerOp,omitempty"`
	AllocsPerOp float64 `json:"allocsPerOp,omitempty"`
	HasMem      bool    `json:"hasMem,omitempty"`
}

// memPresent reports whether the row carries -benchmem data. Baselines
// written before the HasMem field count as present when they have nonzero
// memory columns.
func (r Result) memPresent() bool {
	return r.HasMem || r.AllocsPerOp > 0 || r.BPerOp > 0
}

// Summary is the JSON document benchjson reads and writes.
type Summary struct {
	Goos       string            `json:"goos,omitempty"`
	Goarch     string            `json:"goarch,omitempty"`
	Pkg        string            `json:"pkg,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// benchLine matches e.g. "BenchmarkAnalyzeFilesSerial-8   3   123456 ns/op"
// with optional -benchmem columns ("456 B/op   7 allocs/op"); the -8
// GOMAXPROCS suffix is stripped so keys are stable across runners.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

// parse reads `go test -bench` text output into a Summary.
func parse(r io.Reader) (*Summary, error) {
	s := &Summary{Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			s.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			s.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			s.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			s.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			n, err := strconv.Atoi(m[2])
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad iteration count in %q: %v", line, err)
			}
			ns, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad ns/op in %q: %v", line, err)
			}
			r := Result{N: n, NsPerOp: ns}
			if m[4] != "" {
				if r.BPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
					return nil, fmt.Errorf("benchjson: bad B/op in %q: %v", line, err)
				}
				if r.AllocsPerOp, err = strconv.ParseFloat(m[5], 64); err != nil {
					return nil, fmt.Errorf("benchjson: bad allocs/op in %q: %v", line, err)
				}
				r.HasMem = true
			}
			s.Benchmarks[m[1]] = r
		}
	}
	return s, sc.Err()
}

// gate compares the gated benchmark against the baseline; it returns an
// error when the regression tolerance is exceeded, and a human-readable
// verdict line otherwise.
func gate(current, baseline *Summary, name string, maxRegressPct float64) (string, error) {
	cur, ok := current.Benchmarks[name]
	if !ok {
		return "", fmt.Errorf("benchjson: gate benchmark %s missing from current run", name)
	}
	base, ok := baseline.Benchmarks[name]
	if !ok {
		return fmt.Sprintf("benchjson: %s has no committed baseline yet; gate skipped", name), nil
	}
	limit := base.NsPerOp * (1 + maxRegressPct/100)
	delta := (cur.NsPerOp - base.NsPerOp) / base.NsPerOp * 100
	if cur.NsPerOp > limit {
		return "", fmt.Errorf("benchjson: %s regressed %.1f%% (%.0f ns/op vs baseline %.0f, tolerance %.0f%%)",
			name, delta, cur.NsPerOp, base.NsPerOp, maxRegressPct)
	}
	return fmt.Sprintf("benchjson: %s within tolerance: %.0f ns/op vs baseline %.0f (%+.1f%%, tolerance %.0f%%)",
		name, cur.NsPerOp, base.NsPerOp, delta, maxRegressPct), nil
}

// gateAllocs compares the gated benchmark's allocs/op against the
// baseline. Unlike ns/op, allocation counts are machine-independent, so
// the tolerance can be tight; a negative tolerance demands an improvement
// (current must be at least that many percent below the baseline). A gate
// benchmark (or baseline) without -benchmem data is a warning, not a
// failure, so the first -benchmem baseline can land with the gate.
func gateAllocs(current, baseline *Summary, name string, maxRegressPct float64) (string, error) {
	cur, ok := current.Benchmarks[name]
	if !ok {
		return "", fmt.Errorf("benchjson: allocs gate benchmark %s missing from current run", name)
	}
	if !cur.memPresent() {
		return "", fmt.Errorf("benchjson: %s has no allocs/op in the current run (run with -benchmem)", name)
	}
	base, ok := baseline.Benchmarks[name]
	if !ok || !base.memPresent() {
		return fmt.Sprintf("benchjson: %s has no committed allocs/op baseline yet; allocs gate skipped", name), nil
	}
	limit := base.AllocsPerOp * (1 + maxRegressPct/100)
	delta := (cur.AllocsPerOp - base.AllocsPerOp) / base.AllocsPerOp * 100
	if cur.AllocsPerOp > limit {
		return "", fmt.Errorf("benchjson: %s allocs/op regressed %.1f%% (%.0f vs baseline %.0f, tolerance %.0f%%)",
			name, delta, cur.AllocsPerOp, base.AllocsPerOp, maxRegressPct)
	}
	return fmt.Sprintf("benchjson: %s allocs/op within tolerance: %.0f vs baseline %.0f (%+.1f%%, tolerance %.0f%%)",
		name, cur.AllocsPerOp, base.AllocsPerOp, delta, maxRegressPct), nil
}

// gateRatio enforces a within-run relation between two benchmarks:
// ns/op of num must not exceed ns/op of den × the ratio bound. Unlike the
// baseline gate it compares measurements from the same process on the
// same machine, so it stays meaningful across runner-hardware changes —
// CI uses it to assert that batched inference keeps beating the unbatched
// parallel pipeline and that data-parallel training keeps beating the
// serial epoch loop (within noise tolerance).
//
// The spec is NUMERATOR/DENOMINATOR with an optional per-spec bound
// appended as "<=X" (e.g. "BenchA/BenchB<=0.95"); without one, maxRatio
// (the -max-ratio flag) applies. A trailing "@allocs" compares allocs/op
// (requires a -benchmem run) instead of ns/op — the machine-independent
// form the front-end pooling gate uses. The flag is repeatable, so one
// invocation can enforce several relations over the same run.
func gateRatio(current *Summary, spec string, maxRatio float64) (string, error) {
	metric := "ns/op"
	if rel, ok := strings.CutSuffix(spec, "@allocs"); ok {
		spec, metric = rel, "allocs/op"
	}
	if rel, bound, ok := strings.Cut(spec, "<="); ok {
		v, err := strconv.ParseFloat(bound, 64)
		if err != nil {
			return "", fmt.Errorf("benchjson: bad ratio bound in %q: %v", spec, err)
		}
		spec, maxRatio = rel, v
	}
	num, den, ok := strings.Cut(spec, "/")
	if !ok {
		return "", fmt.Errorf("benchjson: -gate-ratio wants NUMERATOR/DENOMINATOR[<=MAX][@allocs], got %q", spec)
	}
	cn, ok := current.Benchmarks[num]
	if !ok {
		return "", fmt.Errorf("benchjson: ratio benchmark %s missing from current run", num)
	}
	cd, ok := current.Benchmarks[den]
	if !ok {
		return "", fmt.Errorf("benchjson: ratio benchmark %s missing from current run", den)
	}
	nv, dv := cn.NsPerOp, cd.NsPerOp
	if metric == "allocs/op" {
		if !cn.memPresent() || !cd.memPresent() {
			return "", fmt.Errorf("benchjson: %s/%s has no allocs/op data (run with -benchmem)", num, den)
		}
		nv, dv = cn.AllocsPerOp, cd.AllocsPerOp
		if dv == 0 {
			// A zero-allocation denominator: the numerator passes only by
			// matching it (any nonzero numerator is infinitely worse).
			if nv == 0 {
				return fmt.Sprintf("benchjson: %s/%s %s both zero; trivially within %.3f", num, den, metric, maxRatio), nil
			}
			return "", fmt.Errorf("benchjson: %s/%s %s ratio is infinite (%.0f vs 0)", num, den, metric, nv)
		}
	}
	ratio := nv / dv
	if ratio > maxRatio {
		return "", fmt.Errorf("benchjson: %s/%s %s ratio %.3f exceeds %.3f (%.0f vs %.0f)",
			num, den, metric, ratio, maxRatio, nv, dv)
	}
	return fmt.Sprintf("benchjson: %s/%s %s ratio %.3f within %.3f (%.0f vs %.0f)",
		num, den, metric, ratio, maxRatio, nv, dv), nil
}

// load reads a Summary JSON file.
func load(path string) (*Summary, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Summary
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("benchjson: parsing %s: %v", path, err)
	}
	return &s, nil
}

// write serializes a Summary with stable key order (json.Marshal sorts
// map keys) and a trailing newline so the artifact diffs cleanly.
func write(path string, s *Summary) error {
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func main() {
	in := flag.String("in", "", "benchmark output file (default: stdin)")
	out := flag.String("out", "", "write the parsed summary as JSON to this file")
	baselinePath := flag.String("baseline", "", "committed baseline JSON to gate against")
	gateName := flag.String("gate", "", "benchmark name to gate (requires -baseline)")
	maxRegress := flag.Float64("max-regress", 20, "allowed ns/op regression over the baseline, in percent")
	var ratioSpecs ratioList
	flag.Var(&ratioSpecs, "gate-ratio", "within-run gate NUMERATOR/DENOMINATOR[<=MAX][@allocs] (repeatable): fail when metric(num) > metric(den) × the bound")
	maxRatio := flag.Float64("max-ratio", 1, "default ratio bound for -gate-ratio specs without an explicit <=MAX")
	var allocGates ratioList
	flag.Var(&allocGates, "gate-allocs", "benchmark name whose allocs/op is gated against -baseline (repeatable; requires -benchmem output)")
	maxAllocsRegress := flag.Float64("max-allocs-regress", 10, "allowed allocs/op regression over the baseline, in percent")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	summary, err := parse(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(summary.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}

	names := make([]string, 0, len(summary.Benchmarks))
	for name := range summary.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := summary.Benchmarks[name]
		if b.memPresent() {
			fmt.Printf("%-40s %12.0f ns/op %12.0f B/op %9.0f allocs/op  (n=%d)\n", name, b.NsPerOp, b.BPerOp, b.AllocsPerOp, b.N)
		} else {
			fmt.Printf("%-40s %12.0f ns/op  (n=%d)\n", name, b.NsPerOp, b.N)
		}
	}

	if *out != "" {
		if err := write(*out, summary); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if *gateName != "" {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -gate requires -baseline")
			os.Exit(1)
		}
		baseline, err := load(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		verdict, err := gate(summary, baseline, *gateName, *maxRegress)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(verdict)
	}
	if len(allocGates) > 0 {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -gate-allocs requires -baseline")
			os.Exit(1)
		}
		baseline, err := load(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		for _, name := range allocGates {
			verdict, err := gateAllocs(summary, baseline, name, *maxAllocsRegress)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(verdict)
		}
	}
	for _, spec := range ratioSpecs {
		verdict, err := gateRatio(summary, spec, *maxRatio)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(verdict)
	}
}

// ratioList collects repeated -gate-ratio flags.
type ratioList []string

func (r *ratioList) String() string { return strings.Join(*r, ",") }

func (r *ratioList) Set(v string) error {
	*r = append(*r, v)
	return nil
}
