package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: graph2par
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAnalyzeFilesSerial   	       3	 262319703 ns/op
BenchmarkAnalyzeFilesParallel-8	       3	 282402152 ns/op
BenchmarkAnalyzeFilesBatched  	       3	 262529111 ns/op
BenchmarkAnalyzeFilesCached   	       3	   1279871.5 ns/op
PASS
ok  	graph2par	12.738s
`

func TestParse(t *testing.T) {
	s, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if s.Goos != "linux" || s.Goarch != "amd64" || s.Pkg != "graph2par" {
		t.Errorf("metadata = %q/%q/%q", s.Goos, s.Goarch, s.Pkg)
	}
	if len(s.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(s.Benchmarks))
	}
	// The -8 GOMAXPROCS suffix must be stripped so keys are stable.
	got, ok := s.Benchmarks["BenchmarkAnalyzeFilesParallel"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if got.N != 3 || got.NsPerOp != 282402152 {
		t.Errorf("Parallel = %+v", got)
	}
	if frac := s.Benchmarks["BenchmarkAnalyzeFilesCached"].NsPerOp; frac != 1279871.5 {
		t.Errorf("fractional ns/op parsed as %v", frac)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	s, err := parse(strings.NewReader("unrelated line\nBenchmarkX notanumber ns/op\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 0 {
		t.Errorf("noise parsed as benchmarks: %v", s.Benchmarks)
	}
}

func TestGate(t *testing.T) {
	base := &Summary{Benchmarks: map[string]Result{
		"BenchmarkAnalyzeFilesBatched": {N: 3, NsPerOp: 100_000},
	}}
	run := func(ns float64) *Summary {
		return &Summary{Benchmarks: map[string]Result{
			"BenchmarkAnalyzeFilesBatched": {N: 3, NsPerOp: ns},
		}}
	}

	// Within tolerance: +19% passes at 20%.
	if _, err := gate(run(119_000), base, "BenchmarkAnalyzeFilesBatched", 20); err != nil {
		t.Errorf("19%% regression should pass at 20%% tolerance: %v", err)
	}
	// Faster than baseline passes trivially.
	if _, err := gate(run(50_000), base, "BenchmarkAnalyzeFilesBatched", 20); err != nil {
		t.Errorf("speedup should pass: %v", err)
	}
	// Beyond tolerance fails.
	if _, err := gate(run(121_000), base, "BenchmarkAnalyzeFilesBatched", 20); err == nil {
		t.Error("21% regression should fail at 20% tolerance")
	}
	// Gate benchmark missing from the current run is an error.
	if _, err := gate(&Summary{Benchmarks: map[string]Result{}}, base, "BenchmarkAnalyzeFilesBatched", 20); err == nil {
		t.Error("missing current measurement should fail")
	}
	// Missing from the baseline is a warning, not a failure, so a new
	// benchmark can land with its first baseline.
	msg, err := gate(run(100), &Summary{Benchmarks: map[string]Result{}}, "BenchmarkAnalyzeFilesBatched", 20)
	if err != nil {
		t.Errorf("missing baseline should be skipped: %v", err)
	}
	if !strings.Contains(msg, "skipped") {
		t.Errorf("skip verdict should say so: %q", msg)
	}
}

func TestGateRatio(t *testing.T) {
	run := &Summary{Benchmarks: map[string]Result{
		"BenchmarkAnalyzeFilesBatched":  {N: 3, NsPerOp: 90_000},
		"BenchmarkAnalyzeFilesParallel": {N: 3, NsPerOp: 100_000},
	}}
	spec := "BenchmarkAnalyzeFilesBatched/BenchmarkAnalyzeFilesParallel"

	// 0.9 ratio passes at 1.0 and at 1.1.
	for _, max := range []float64{1.0, 1.1} {
		if _, err := gateRatio(run, spec, max); err != nil {
			t.Errorf("ratio 0.9 should pass at %.1f: %v", max, err)
		}
	}
	// Batched slower than allowed fails.
	run.Benchmarks["BenchmarkAnalyzeFilesBatched"] = Result{N: 3, NsPerOp: 120_000}
	if _, err := gateRatio(run, spec, 1.1); err == nil {
		t.Error("ratio 1.2 should fail at 1.1")
	}
	// Malformed spec and missing benchmarks are errors.
	if _, err := gateRatio(run, "NoSlash", 1); err == nil {
		t.Error("spec without a slash should fail")
	}
	if _, err := gateRatio(run, "BenchmarkMissing/BenchmarkAnalyzeFilesParallel", 1); err == nil {
		t.Error("missing numerator should fail")
	}
}

// TestGateRatioInlineBound covers the "<=MAX" per-spec syntax: the inline
// bound wins over the default, and a malformed bound is an error.
func TestGateRatioInlineBound(t *testing.T) {
	run := &Summary{Benchmarks: map[string]Result{
		"BenchmarkTrainEpochParallel": {N: 3, NsPerOp: 80_000},
		"BenchmarkTrainEpochSerial":   {N: 3, NsPerOp: 100_000},
	}}
	spec := "BenchmarkTrainEpochParallel/BenchmarkTrainEpochSerial"

	// ratio 0.8: passes at inline <=0.9 even with a default bound of 0.1.
	if _, err := gateRatio(run, spec+"<=0.9", 0.1); err != nil {
		t.Errorf("inline bound should override default: %v", err)
	}
	// ...and fails at inline <=0.5 even with a permissive default.
	if _, err := gateRatio(run, spec+"<=0.5", 10); err == nil {
		t.Error("inline bound 0.5 should fail ratio 0.8")
	}
	if _, err := gateRatio(run, spec+"<=notanumber", 1); err == nil {
		t.Error("malformed inline bound should fail")
	}
}
