package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: graph2par
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAnalyzeFilesSerial   	       3	 262319703 ns/op
BenchmarkAnalyzeFilesParallel-8	       3	 282402152 ns/op
BenchmarkAnalyzeFilesBatched  	       3	 262529111 ns/op
BenchmarkAnalyzeFilesCached   	       3	   1279871.5 ns/op
PASS
ok  	graph2par	12.738s
`

func TestParse(t *testing.T) {
	s, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if s.Goos != "linux" || s.Goarch != "amd64" || s.Pkg != "graph2par" {
		t.Errorf("metadata = %q/%q/%q", s.Goos, s.Goarch, s.Pkg)
	}
	if len(s.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(s.Benchmarks))
	}
	// The -8 GOMAXPROCS suffix must be stripped so keys are stable.
	got, ok := s.Benchmarks["BenchmarkAnalyzeFilesParallel"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if got.N != 3 || got.NsPerOp != 282402152 {
		t.Errorf("Parallel = %+v", got)
	}
	if frac := s.Benchmarks["BenchmarkAnalyzeFilesCached"].NsPerOp; frac != 1279871.5 {
		t.Errorf("fractional ns/op parsed as %v", frac)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	s, err := parse(strings.NewReader("unrelated line\nBenchmarkX notanumber ns/op\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 0 {
		t.Errorf("noise parsed as benchmarks: %v", s.Benchmarks)
	}
}

func TestGate(t *testing.T) {
	base := &Summary{Benchmarks: map[string]Result{
		"BenchmarkAnalyzeFilesBatched": {N: 3, NsPerOp: 100_000},
	}}
	run := func(ns float64) *Summary {
		return &Summary{Benchmarks: map[string]Result{
			"BenchmarkAnalyzeFilesBatched": {N: 3, NsPerOp: ns},
		}}
	}

	// Within tolerance: +19% passes at 20%.
	if _, err := gate(run(119_000), base, "BenchmarkAnalyzeFilesBatched", 20); err != nil {
		t.Errorf("19%% regression should pass at 20%% tolerance: %v", err)
	}
	// Faster than baseline passes trivially.
	if _, err := gate(run(50_000), base, "BenchmarkAnalyzeFilesBatched", 20); err != nil {
		t.Errorf("speedup should pass: %v", err)
	}
	// Beyond tolerance fails.
	if _, err := gate(run(121_000), base, "BenchmarkAnalyzeFilesBatched", 20); err == nil {
		t.Error("21% regression should fail at 20% tolerance")
	}
	// Gate benchmark missing from the current run is an error.
	if _, err := gate(&Summary{Benchmarks: map[string]Result{}}, base, "BenchmarkAnalyzeFilesBatched", 20); err == nil {
		t.Error("missing current measurement should fail")
	}
	// Missing from the baseline is a warning, not a failure, so a new
	// benchmark can land with its first baseline.
	msg, err := gate(run(100), &Summary{Benchmarks: map[string]Result{}}, "BenchmarkAnalyzeFilesBatched", 20)
	if err != nil {
		t.Errorf("missing baseline should be skipped: %v", err)
	}
	if !strings.Contains(msg, "skipped") {
		t.Errorf("skip verdict should say so: %q", msg)
	}
}

func TestGateRatio(t *testing.T) {
	run := &Summary{Benchmarks: map[string]Result{
		"BenchmarkAnalyzeFilesBatched":  {N: 3, NsPerOp: 90_000},
		"BenchmarkAnalyzeFilesParallel": {N: 3, NsPerOp: 100_000},
	}}
	spec := "BenchmarkAnalyzeFilesBatched/BenchmarkAnalyzeFilesParallel"

	// 0.9 ratio passes at 1.0 and at 1.1.
	for _, max := range []float64{1.0, 1.1} {
		if _, err := gateRatio(run, spec, max); err != nil {
			t.Errorf("ratio 0.9 should pass at %.1f: %v", max, err)
		}
	}
	// Batched slower than allowed fails.
	run.Benchmarks["BenchmarkAnalyzeFilesBatched"] = Result{N: 3, NsPerOp: 120_000}
	if _, err := gateRatio(run, spec, 1.1); err == nil {
		t.Error("ratio 1.2 should fail at 1.1")
	}
	// Malformed spec and missing benchmarks are errors.
	if _, err := gateRatio(run, "NoSlash", 1); err == nil {
		t.Error("spec without a slash should fail")
	}
	if _, err := gateRatio(run, "BenchmarkMissing/BenchmarkAnalyzeFilesParallel", 1); err == nil {
		t.Error("missing numerator should fail")
	}
}

// TestGateRatioInlineBound covers the "<=MAX" per-spec syntax: the inline
// bound wins over the default, and a malformed bound is an error.
func TestGateRatioInlineBound(t *testing.T) {
	run := &Summary{Benchmarks: map[string]Result{
		"BenchmarkTrainEpochParallel": {N: 3, NsPerOp: 80_000},
		"BenchmarkTrainEpochSerial":   {N: 3, NsPerOp: 100_000},
	}}
	spec := "BenchmarkTrainEpochParallel/BenchmarkTrainEpochSerial"

	// ratio 0.8: passes at inline <=0.9 even with a default bound of 0.1.
	if _, err := gateRatio(run, spec+"<=0.9", 0.1); err != nil {
		t.Errorf("inline bound should override default: %v", err)
	}
	// ...and fails at inline <=0.5 even with a permissive default.
	if _, err := gateRatio(run, spec+"<=0.5", 10); err == nil {
		t.Error("inline bound 0.5 should fail ratio 0.8")
	}
	if _, err := gateRatio(run, spec+"<=notanumber", 1); err == nil {
		t.Error("malformed inline bound should fail")
	}
}

const sampleBenchmemOutput = `goos: linux
pkg: graph2par
BenchmarkFrontendPipeline-4      	      20	   1520976 ns/op	  220698 B/op	    1933 allocs/op
BenchmarkFrontendPipelineFresh   	      20	   3346187 ns/op	 4107216 B/op	   13858 allocs/op
BenchmarkAnalyzeFilesSerial      	       3	 234000000 ns/op
PASS
`

// TestParseBenchmem covers the optional -benchmem columns.
func TestParseBenchmem(t *testing.T) {
	s, err := parse(strings.NewReader(sampleBenchmemOutput))
	if err != nil {
		t.Fatal(err)
	}
	got := s.Benchmarks["BenchmarkFrontendPipeline"]
	if got.NsPerOp != 1520976 || got.BPerOp != 220698 || got.AllocsPerOp != 1933 {
		t.Errorf("benchmem row = %+v", got)
	}
	// A plain row still parses, with zero mem columns.
	if r := s.Benchmarks["BenchmarkAnalyzeFilesSerial"]; r.NsPerOp != 234000000 || r.AllocsPerOp != 0 {
		t.Errorf("plain row = %+v", r)
	}
}

func TestGateAllocs(t *testing.T) {
	base := &Summary{Benchmarks: map[string]Result{
		"BenchmarkFrontendPipeline": {N: 3, NsPerOp: 1, AllocsPerOp: 1000},
	}}
	run := func(allocs float64) *Summary {
		return &Summary{Benchmarks: map[string]Result{
			"BenchmarkFrontendPipeline": {N: 3, NsPerOp: 1, AllocsPerOp: allocs},
		}}
	}
	if _, err := gateAllocs(run(1099), base, "BenchmarkFrontendPipeline", 10); err != nil {
		t.Errorf("+9.9%% should pass at 10%%: %v", err)
	}
	if _, err := gateAllocs(run(1101), base, "BenchmarkFrontendPipeline", 10); err == nil {
		t.Error("+10.1% should fail at 10%")
	}
	// Negative tolerance demands an improvement.
	if _, err := gateAllocs(run(500), base, "BenchmarkFrontendPipeline", -40); err != nil {
		t.Errorf("-50%% should pass a -40%% improvement gate: %v", err)
	}
	if _, err := gateAllocs(run(700), base, "BenchmarkFrontendPipeline", -40); err == nil {
		t.Error("-30% should fail a -40% improvement gate")
	}
	// Missing benchmem data in the current run is an error; a missing
	// baseline is a skip.
	if _, err := gateAllocs(&Summary{Benchmarks: map[string]Result{
		"BenchmarkFrontendPipeline": {N: 3, NsPerOp: 1},
	}}, base, "BenchmarkFrontendPipeline", 10); err == nil {
		t.Error("current run without -benchmem should fail the allocs gate")
	}
	msg, err := gateAllocs(run(1), &Summary{Benchmarks: map[string]Result{}}, "BenchmarkFrontendPipeline", 10)
	if err != nil {
		t.Errorf("missing baseline should skip: %v", err)
	}
	if !strings.Contains(msg, "skipped") {
		t.Errorf("skip verdict should say so: %q", msg)
	}
}

// TestGateRatioAllocs covers the "@allocs" metric selector.
func TestGateRatioAllocs(t *testing.T) {
	run := &Summary{Benchmarks: map[string]Result{
		"BenchmarkFrontendPipeline":      {N: 3, NsPerOp: 10, AllocsPerOp: 2000},
		"BenchmarkFrontendPipelineFresh": {N: 3, NsPerOp: 10, AllocsPerOp: 10000},
	}}
	spec := "BenchmarkFrontendPipeline/BenchmarkFrontendPipelineFresh"
	if _, err := gateRatio(run, spec+"<=0.5@allocs", 1); err != nil {
		t.Errorf("allocs ratio 0.2 should pass at 0.5: %v", err)
	}
	if _, err := gateRatio(run, spec+"<=0.1@allocs", 1); err == nil {
		t.Error("allocs ratio 0.2 should fail at 0.1")
	}
	// Falls back to ns/op without the selector (ratio 1.0 > 0.5).
	if _, err := gateRatio(run, spec+"<=0.5", 1); err == nil {
		t.Error("ns ratio 1.0 should fail at 0.5")
	}
	// @allocs without benchmem data errors.
	noMem := &Summary{Benchmarks: map[string]Result{
		"BenchmarkFrontendPipeline":      {N: 3, NsPerOp: 10},
		"BenchmarkFrontendPipelineFresh": {N: 3, NsPerOp: 10},
	}}
	if _, err := gateRatio(noMem, spec+"<=0.5@allocs", 1); err == nil {
		t.Error("@allocs without benchmem data should fail")
	}
}

// TestZeroAllocsIsData pins that a legitimate "0 allocs/op" row is
// treated as measured data, not as missing -benchmem output.
func TestZeroAllocsIsData(t *testing.T) {
	s, err := parse(strings.NewReader(
		"BenchmarkFrontendTokenize-4   20   419593 ns/op   784 B/op   0 allocs/op\n" +
			"BenchmarkZeroEverything       20   100 ns/op   0 B/op   0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	zt := s.Benchmarks["BenchmarkZeroEverything"]
	if !zt.HasMem || !zt.memPresent() {
		t.Fatal("0 B/op + 0 allocs/op must still count as measured")
	}

	// An allocs gate against a zero baseline passes when current is zero.
	base := &Summary{Benchmarks: map[string]Result{
		"BenchmarkZeroEverything": {N: 1, NsPerOp: 1, HasMem: true},
	}}
	if _, err := gateAllocs(s, base, "BenchmarkZeroEverything", 10); err != nil {
		t.Errorf("0 vs 0 allocs should pass: %v", err)
	}

	// @allocs ratio with a zero denominator: zero numerator passes,
	// nonzero fails (infinitely worse).
	s.Benchmarks["BenchmarkPair"] = Result{N: 1, NsPerOp: 1, AllocsPerOp: 5, HasMem: true}
	if _, err := gateRatio(s, "BenchmarkZeroEverything/BenchmarkZeroEverything<=1@allocs", 1); err != nil {
		t.Errorf("0/0 allocs ratio should pass: %v", err)
	}
	if _, err := gateRatio(s, "BenchmarkPair/BenchmarkZeroEverything<=1000@allocs", 1); err == nil {
		t.Error("nonzero/0 allocs ratio should fail any bound")
	}
}
