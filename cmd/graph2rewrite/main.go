// graph2rewrite emits transformed OpenMP C: it parses C sources, derives
// the clause list the dependence analysis can justify for every loop,
// gates each derived directive through the graph2verify lattice, and
// splices the accepted pragmas into the source bytes — validating every
// rewrite by graph-identical re-parse and by serial-vs-reversed execution
// under the interpreter. Loops failing any gate stay suggestion-only with
// the reason in the report.
//
// Usage:
//
//	go run ./cmd/graph2rewrite examples/c
//	go run ./cmd/graph2rewrite -json examples/c | jq .
//	go run ./cmd/graph2rewrite -out /tmp/rewritten examples/c
//	go run ./cmd/graph2rewrite -only structure,purity file.c
//
// Arguments are C files or directories (walked recursively for *.c).
// Exit status mirrors graph2verify: 0 when every loop's final verdict is
// safe or unknown, 1 when any loop stays unsafe, 2 on operational errors.
// Output is sorted by (file, line) and byte-identical across runs and
// -workers values, so CI diffs it against a golden file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"graph2par/internal/cli"
	"graph2par/internal/parallel"
	"graph2par/internal/rewrite"
	"graph2par/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// pathResult is one source file's outcome, or the error preventing it.
type pathResult struct {
	res *rewrite.FileResult
	err error
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("graph2rewrite", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit per-file rewrite plans as a JSON array")
	list := fs.Bool("list", false, "list the verifier check suite gating rewrites and exit")
	only := fs.String("only", "", "comma-separated check names to gate with (default: all)")
	workers := fs.Int("workers", 0, "worker goroutines for multi-file runs (0 = GOMAXPROCS)")
	outDir := fs.String("out", "", "write every transformed source into this directory (by base name)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: graph2rewrite [-json] [-only a,b] [-workers n] [-out dir] <file.c|dir>...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return cli.ExitClean
		}
		return cli.ExitError
	}

	checks := verify.Checks()
	if *list {
		for _, c := range checks {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name, c.Doc)
		}
		return cli.ExitClean
	}
	checks, err := cli.SelectOnly(checks, func(c *verify.Check) string { return c.Name }, *only, "check")
	if err != nil {
		fmt.Fprintf(stderr, "graph2rewrite: %v\n", err)
		return cli.ExitError
	}

	paths, err := cli.CollectSources(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "graph2rewrite: %v\n", err)
		return cli.ExitError
	}
	if len(paths) == 0 {
		fmt.Fprintf(stderr, "graph2rewrite: no C sources given\n")
		fs.Usage()
		return cli.ExitError
	}

	results := make([]pathResult, len(paths))
	parallel.ForEach(*workers, len(paths), func(i int) {
		results[i] = rewritePath(paths[i], checks)
	})

	var all []*rewrite.FileResult
	for i, r := range results {
		if r.err != nil {
			fmt.Fprintf(stderr, "graph2rewrite: %s: %v\n", paths[i], r.err)
			return cli.ExitError
		}
		all = append(all, r.res)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "graph2rewrite: %v\n", err)
			return cli.ExitError
		}
		for _, r := range all {
			dst := filepath.Join(*outDir, filepath.Base(r.Path))
			if err := os.WriteFile(dst, []byte(r.Output), 0o644); err != nil {
				fmt.Fprintf(stderr, "graph2rewrite: %v\n", err)
				return cli.ExitError
			}
		}
	}

	unsafe := 0
	for _, r := range all {
		for _, p := range r.Loops {
			if p.Verdict.Level == verify.Unsafe {
				unsafe++
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintf(stderr, "graph2rewrite: %v\n", err)
			return cli.ExitError
		}
	} else {
		for _, r := range all {
			for _, p := range r.Loops {
				line := fmt.Sprintf("%s:%d: [%s] %s loop", r.Path, p.Line, p.Status, p.Kind)
				switch {
				case p.Status != rewrite.StatusSuggestion:
					line += ": " + p.Pragma
				case p.Reason != "":
					line += ": " + p.Reason
				}
				fmt.Fprintln(stdout, line)
			}
		}
		if unsafe > 0 {
			fmt.Fprintf(stderr, "graph2rewrite: %d loop(s) remain unsafe across %d file(s)\n",
				unsafe, len(paths))
		}
	}
	if unsafe > 0 {
		return cli.ExitFindings
	}
	return cli.ExitClean
}

// rewritePath rewrites one C file.
func rewritePath(path string, checks []*verify.Check) pathResult {
	src, err := os.ReadFile(path)
	if err != nil {
		return pathResult{err: err}
	}
	res, err := rewrite.RewriteSourceWith(string(src), checks)
	if err != nil {
		return pathResult{err: err}
	}
	res.Path = path
	return pathResult{res: res}
}
