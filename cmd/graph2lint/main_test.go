package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// capture runs the checker with stdout/stderr redirected to temp files and
// returns the exit code and both streams.
func capture(t *testing.T, args []string) (code int, stdout, stderr string) {
	t.Helper()
	outF, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	code = run(args, outF, errF)
	outB, _ := os.ReadFile(outF.Name())
	errB, _ := os.ReadFile(errF.Name())
	return code, string(outB), string(errB)
}

func TestListFlag(t *testing.T) {
	code, out, _ := capture(t, []string{"-list"})
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{"determinism", "noalloc", "poolsafe", "lockdiscipline"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	code, _, errOut := capture(t, []string{"-only", "bogus"})
	if code != 2 {
		t.Fatalf("-only bogus exited %d, want 2", code)
	}
	if !strings.Contains(errOut, `unknown analyzer "bogus"`) {
		t.Errorf("stderr missing unknown-analyzer message:\n%s", errOut)
	}
}

func TestBadPattern(t *testing.T) {
	code, _, _ := capture(t, []string{"./does-not-exist"})
	if code != 2 {
		t.Fatalf("bad pattern exited %d, want 2", code)
	}
}

// TestJSONSelf lints this package. It must be clean, and -json must emit a
// well-formed (empty) array — the contract the CI summary step consumes.
func TestJSONSelf(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	code, out, errOut := capture(t, []string{"-json", "."})
	if code != 0 {
		t.Fatalf("linting cmd/graph2lint exited %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	var diags []map[string]any
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out)
	}
	if len(diags) != 0 {
		t.Errorf("expected clean run, got %d diagnostics", len(diags))
	}
}
