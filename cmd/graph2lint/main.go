// graph2lint is the repo's invariant checker: a multichecker over the
// custom analyzers in internal/analysis that mechanically enforces the
// determinism, zero-allocation and pool-lifetime contracts the tuned hot
// paths depend on.
//
// Usage:
//
//	go run ./cmd/graph2lint ./...
//	go run ./cmd/graph2lint -json ./... | jq .
//	go run ./cmd/graph2lint -list
//
// Exit status is 0 when the tree is clean, 1 when any analyzer reports a
// violation, 2 on operational errors (unparseable code, bad flags).
// Diagnostics print as file:line:col: [analyzer] message; -json emits a
// machine-readable array for the CI summary step.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"graph2par/internal/analysis"
	"graph2par/internal/cli"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("graph2lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "list the analyzer suite and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: graph2lint [-json] [-only a,b] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return cli.ExitClean
		}
		return cli.ExitError
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			scope := "all packages"
			if a.Match != nil {
				scope = "restricted packages"
			}
			fmt.Fprintf(stdout, "%-16s (%s)\n    %s\n", a.Name, scope, a.Doc)
		}
		return cli.ExitClean
	}
	analyzers, err := cli.SelectOnly(analyzers, func(a *analysis.Analyzer) string { return a.Name }, *only, "analyzer")
	if err != nil {
		fmt.Fprintf(stderr, "graph2lint: %v\n", err)
		return cli.ExitError
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.LoadPatterns(".", patterns)
	if err != nil {
		fmt.Fprintf(stderr, "graph2lint: %v\n", err)
		return cli.ExitError
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "graph2lint: %v\n", err)
		return cli.ExitError
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "graph2lint: %v\n", err)
			return cli.ExitError
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "graph2lint: %d violation(s) across %d package(s) checked\n",
				len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		return cli.ExitFindings
	}
	return cli.ExitClean
}
