// graph2lint is the repo's invariant checker: a multichecker over the
// custom analyzers in internal/analysis that mechanically enforces the
// determinism, zero-allocation and pool-lifetime contracts the tuned hot
// paths depend on.
//
// Usage:
//
//	go run ./cmd/graph2lint ./...
//	go run ./cmd/graph2lint -json ./... | jq .
//	go run ./cmd/graph2lint -list
//
// Exit status is 0 when the tree is clean, 1 when any analyzer reports a
// violation, 2 on operational errors (unparseable code, bad flags).
// Diagnostics print as file:line:col: [analyzer] message; -json emits a
// machine-readable array for the CI summary step.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"graph2par/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("graph2lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "list the analyzer suite and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: graph2lint [-json] [-only a,b] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			scope := "all packages"
			if a.Match != nil {
				scope = "restricted packages"
			}
			fmt.Fprintf(stdout, "%-16s (%s)\n    %s\n", a.Name, scope, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				names := make([]string, 0, len(byName))
				for n := range byName {
					names = append(names, n)
				}
				sort.Strings(names)
				fmt.Fprintf(stderr, "graph2lint: unknown analyzer %q (have %s)\n",
					name, strings.Join(names, ", "))
				return 2
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.LoadPatterns(".", patterns)
	if err != nil {
		fmt.Fprintf(stderr, "graph2lint: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "graph2lint: %v\n", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "graph2lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "graph2lint: %d violation(s) across %d package(s) checked\n",
				len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
