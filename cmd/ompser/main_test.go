package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the whole command end to end at a tiny scale:
// corpus generation, the Table 1 summary on stdout, the JSON dump and the
// .c file-tree export.
func TestRunSmoke(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "corpus.json")
	treeDir := filepath.Join(dir, "tree")

	var out strings.Builder
	err := run([]string{
		"-scale", "0.005", "-seed", "7",
		"-out", outPath, "-dir", treeDir,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}

	got := out.String()
	if !strings.Contains(got, "OMP_Serial:") || !strings.Contains(got, "loops generated") {
		t.Errorf("missing summary line in output:\n%s", got)
	}
	if !strings.Contains(got, "written to "+outPath) {
		t.Errorf("missing JSON confirmation in output:\n%s", got)
	}

	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("JSON dump not written: %v", err)
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}

	tree, err := os.ReadDir(treeDir)
	if err != nil {
		t.Fatalf("file tree not exported: %v", err)
	}
	if len(tree) == 0 {
		t.Fatal("file tree is empty")
	}
}

// TestRunStatsOnly covers the -out "" stats-only mode and determinism:
// the same seed must print the same summary.
func TestRunStatsOnly(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-scale", "0.005", "-seed", "7", "-out", ""}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scale", "0.005", "-seed", "7", "-out", ""}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different summaries")
	}
	if strings.Contains(a.String(), "written to") {
		t.Error("stats-only mode should not claim to have written a file")
	}
}

// TestRunBadFlag pins the error path: unknown flags are reported, not
// panicked on.
func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Fatal("unknown flag should return an error")
	}
}
