// Command ompser generates the OMP_Serial dataset and writes it as JSON,
// printing the Table 1 statistic summary.
//
// Usage:
//
//	ompser [-scale 0.05] [-seed 1] [-out omp_serial.json]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"graph2par/internal/dataset"
)

// errUsage marks flag-parsing failures the flag package has already
// reported to the user, so main exits without printing them twice.
var errUsage = errors.New("usage error")

// run is main with injectable arguments and output, so the smoke test can
// drive the whole command without a subprocess.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ompser", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.05, "Table 1 scale factor (1.0 = full 33k-loop corpus)")
	seed := fs.Uint64("seed", 1, "generation seed")
	out := fs.String("out", "omp_serial.json", "output JSON path (empty = stats only)")
	dir := fs.String("dir", "", "also export the corpus as a .c file tree to this directory")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return flag.ErrHelp
		}
		return fmt.Errorf("%w: %v", errUsage, err)
	}

	corpus := dataset.Generate(dataset.Config{Scale: *scale, Seed: *seed})
	stats := corpus.ComputeStats()

	fmt.Fprintf(stdout, "OMP_Serial: %d loops generated (%d candidates dropped by the parse check)\n",
		len(corpus.Samples), corpus.Dropped)
	fmt.Fprintf(stdout, "%-12s %-14s %7s %9s %7s %8s\n", "Source", "Type", "Loops", "FuncCall", "Nested", "AvgLOC")
	for _, key := range stats.Keys() {
		cs := stats.ByKey[key]
		fmt.Fprintf(stdout, "%-27s %7d %9d %7d %8.2f\n", key, cs.Loops, cs.Calls, cs.Nested, cs.AvgLOC())
	}

	if *dir != "" {
		if err := corpus.ExportFiles(*dir); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "file tree written to", *dir)
	}
	if *out == "" {
		return nil
	}
	if err := corpus.Save(*out); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "written to", *out)
	return nil
}

func main() {
	switch err := run(os.Args[1:], os.Stdout); {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		// Usage was printed; asking for help is not a failure.
	case errors.Is(err, errUsage):
		// The flag package already printed the error and usage.
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, "ompser:", err)
		os.Exit(1)
	}
}
