// Command ompser generates the OMP_Serial dataset and writes it as JSON,
// printing the Table 1 statistic summary.
//
// Usage:
//
//	ompser [-scale 0.05] [-seed 1] [-out omp_serial.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"graph2par/internal/dataset"
)

func main() {
	scale := flag.Float64("scale", 0.05, "Table 1 scale factor (1.0 = full 33k-loop corpus)")
	seed := flag.Uint64("seed", 1, "generation seed")
	out := flag.String("out", "omp_serial.json", "output JSON path (empty = stats only)")
	dir := flag.String("dir", "", "also export the corpus as a .c file tree to this directory")
	flag.Parse()

	corpus := dataset.Generate(dataset.Config{Scale: *scale, Seed: *seed})
	stats := corpus.ComputeStats()

	fmt.Printf("OMP_Serial: %d loops generated (%d candidates dropped by the parse check)\n",
		len(corpus.Samples), corpus.Dropped)
	fmt.Printf("%-12s %-14s %7s %9s %7s %8s\n", "Source", "Type", "Loops", "FuncCall", "Nested", "AvgLOC")
	for _, key := range stats.Keys() {
		cs := stats.ByKey[key]
		fmt.Printf("%-27s %7d %9d %7d %8.2f\n", key, cs.Loops, cs.Calls, cs.Nested, cs.AvgLOC())
	}

	if *dir != "" {
		if err := corpus.ExportFiles(*dir); err != nil {
			fmt.Fprintln(os.Stderr, "ompser:", err)
			os.Exit(1)
		}
		fmt.Println("file tree written to", *dir)
	}
	if *out == "" {
		return
	}
	if err := corpus.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "ompser:", err)
		os.Exit(1)
	}
	fmt.Println("written to", *out)
}
