package graph2par

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// corpusFiles generates n distinct C translation units, each with a mix of
// do-all, reduction, recurrence and privatizable-temp loops, sized so the
// dynamic comparator has real work to do per file.
func corpusFiles(n int) map[string]string {
	files := make(map[string]string, n)
	for i := 0; i < n; i++ {
		size := 48 + 8*i
		files[fmt.Sprintf("file_%02d.c", i)] = fmt.Sprintf(`
int main() {
    int a[%[1]d], b[%[1]d];
    int i, s = 0, t = 0;
    for (i = 0; i < %[1]d; i++) b[i] = i * %[2]d;
    for (i = 0; i < %[1]d; i++) a[i] = b[i] * 2 + %[2]d;
    for (i = 1; i < %[1]d; i++) a[i] = a[i-1] + b[i];
    for (i = 0; i < %[1]d; i++) s += a[i];
    for (i = 0; i < %[1]d; i++) { t = b[i] + %[2]d; a[i] = t * t; }
    return s + t;
}
`, size, i+1)
	}
	return files
}

// withWorkers returns a shallow copy of the shared test engine re-bounded
// to the given pool size (the model and tools are shared, which is exactly
// the concurrency guarantee under test).
func withWorkers(t *testing.T, n int) *Engine {
	t.Helper()
	e := *engine(t)
	e.SetWorkers(n)
	return &e
}

// TestAnalyzeFilesDeterministicAcrossWorkers is the race-clean determinism
// check: the same ≥8-file corpus analyzed with Workers=1 and Workers=8
// must produce identical reports in identical order.
func TestAnalyzeFilesDeterministicAcrossWorkers(t *testing.T) {
	files := corpusFiles(10)
	serial, err := withWorkers(t, 1).AnalyzeFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	concurrent, err := withWorkers(t, 8).AnalyzeFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(files) || len(concurrent) != len(files) {
		t.Fatalf("files analyzed: serial=%d concurrent=%d, want %d", len(serial), len(concurrent), len(files))
	}
	for name := range files {
		if !reflect.DeepEqual(serial[name], concurrent[name]) {
			t.Errorf("%s: reports differ between Workers=1 and Workers=8\nserial: %+v\nconcurrent: %+v",
				name, serial[name], concurrent[name])
		}
	}
}

// TestAnalyzeFilesMatchesAnalyzeSource pins the batched API to the
// established per-file one.
func TestAnalyzeFilesMatchesAnalyzeSource(t *testing.T) {
	e := withWorkers(t, 4)
	files := corpusFiles(4)
	batch, err := e.AnalyzeFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range files {
		single, err := e.AnalyzeSource(src)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[name], single) {
			t.Errorf("%s: AnalyzeFiles disagrees with AnalyzeSource", name)
		}
	}
}

func TestAnalyzeFilesSurfacesParseErrors(t *testing.T) {
	e := withWorkers(t, 4)
	files := corpusFiles(3)
	files["broken.c"] = "int main() { for (i=0 i<10; i++) ; }"
	out, err := e.AnalyzeFiles(files)
	if err == nil {
		t.Fatal("parse error should surface")
	}
	if !strings.Contains(err.Error(), "broken.c") {
		t.Errorf("error should name the failing file: %v", err)
	}
	if _, ok := out["broken.c"]; ok {
		t.Error("unparsable file should be omitted from results")
	}
	if len(out) != 3 {
		t.Errorf("parsable files analyzed = %d, want 3", len(out))
	}
	for name := range out {
		if len(out[name]) == 0 {
			t.Errorf("%s: no loops reported", name)
		}
	}
}

func TestAnalyzeFilesEmptyInput(t *testing.T) {
	out, err := withWorkers(t, 4).AnalyzeFiles(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("expected empty result, got %d entries", len(out))
	}
}
