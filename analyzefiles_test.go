package graph2par

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// corpusFiles generates n distinct C translation units, each with a mix of
// do-all, reduction, recurrence and privatizable-temp loops, sized so the
// dynamic comparator has real work to do per file.
func corpusFiles(n int) map[string]string {
	files := make(map[string]string, n)
	for i := 0; i < n; i++ {
		size := 48 + 8*i
		files[fmt.Sprintf("file_%02d.c", i)] = fmt.Sprintf(`
int main() {
    int a[%[1]d], b[%[1]d];
    int i, s = 0, t = 0;
    for (i = 0; i < %[1]d; i++) b[i] = i * %[2]d;
    for (i = 0; i < %[1]d; i++) a[i] = b[i] * 2 + %[2]d;
    for (i = 1; i < %[1]d; i++) a[i] = a[i-1] + b[i];
    for (i = 0; i < %[1]d; i++) s += a[i];
    for (i = 0; i < %[1]d; i++) { t = b[i] + %[2]d; a[i] = t * t; }
    return s + t;
}
`, size, i+1)
	}
	return files
}

// withWorkers returns a shallow copy of the shared test engine re-bounded
// to the given pool size (the model and tools are shared, which is exactly
// the concurrency guarantee under test).
func withWorkers(t *testing.T, n int) *Engine {
	t.Helper()
	e := *engine(t)
	e.SetWorkers(n)
	return &e
}

// TestAnalyzeFilesDeterministicAcrossWorkers is the race-clean determinism
// check: the same ≥8-file corpus analyzed with Workers=1 and Workers=8
// must produce identical reports in identical order.
func TestAnalyzeFilesDeterministicAcrossWorkers(t *testing.T) {
	files := corpusFiles(10)
	serial, err := withWorkers(t, 1).AnalyzeFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	concurrent, err := withWorkers(t, 8).AnalyzeFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(files) || len(concurrent) != len(files) {
		t.Fatalf("files analyzed: serial=%d concurrent=%d, want %d", len(serial), len(concurrent), len(files))
	}
	for name := range files {
		if !reflect.DeepEqual(serial[name], concurrent[name]) {
			t.Errorf("%s: reports differ between Workers=1 and Workers=8\nserial: %+v\nconcurrent: %+v",
				name, serial[name], concurrent[name])
		}
	}
}

// TestAnalyzeFilesMatchesAnalyzeSource pins the batched API to the
// established per-file one.
func TestAnalyzeFilesMatchesAnalyzeSource(t *testing.T) {
	e := withWorkers(t, 4)
	files := corpusFiles(4)
	batch, err := e.AnalyzeFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range files {
		single, err := e.AnalyzeSource(src)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[name], single) {
			t.Errorf("%s: AnalyzeFiles disagrees with AnalyzeSource", name)
		}
	}
}

func TestAnalyzeFilesSurfacesParseErrors(t *testing.T) {
	e := withWorkers(t, 4)
	files := corpusFiles(3)
	files["broken.c"] = "int main() { for (i=0 i<10; i++) ; }"
	out, err := e.AnalyzeFiles(files)
	if err == nil {
		t.Fatal("parse error should surface")
	}
	if !strings.Contains(err.Error(), "broken.c") {
		t.Errorf("error should name the failing file: %v", err)
	}
	if _, ok := out["broken.c"]; ok {
		t.Error("unparsable file should be omitted from results")
	}
	if len(out) != 3 {
		t.Errorf("parsable files analyzed = %d, want 3", len(out))
	}
	for name := range out {
		if len(out[name]) == 0 {
			t.Errorf("%s: no loops reported", name)
		}
	}
}

// cachedEngine returns a copy of the shared test engine with the analysis
// cache enabled (the model and tools stay shared; the cache is fresh).
func cachedEngine(t *testing.T, workers, cacheSize int) *Engine {
	t.Helper()
	e := *engine(t)
	e.SetWorkers(workers)
	e.SetCacheSize(cacheSize)
	return &e
}

// TestAnalyzeFilesCachedByteIdentical is the acceptance check for the
// analysis cache: with caching on, both the cold (miss-filling) pass and
// the warm (all-hits) pass must be byte-for-byte identical to the
// uncached engine's output.
func TestAnalyzeFilesCachedByteIdentical(t *testing.T) {
	files := corpusFiles(6)
	plain, err := withWorkers(t, 4).AnalyzeFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	e := cachedEngine(t, 4, 1024)
	cold, err := e.AnalyzeFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := e.AnalyzeFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, cold) {
		t.Error("cold cached run differs from uncached run")
	}
	if !reflect.DeepEqual(plain, warm) {
		t.Error("warm cached run differs from uncached run")
	}

	totalLoops := 0
	for name := range plain {
		totalLoops += len(plain[name])
	}
	st, ok := e.CacheStats()
	if !ok {
		t.Fatal("cache should be enabled")
	}
	if st.Misses != uint64(totalLoops) {
		t.Errorf("misses = %d, want %d (one per loop on the cold pass)", st.Misses, totalLoops)
	}
	if st.Hits != uint64(totalLoops) {
		t.Errorf("hits = %d, want %d (every loop served from cache when warm)", st.Hits, totalLoops)
	}
	if st.Entries != totalLoops {
		t.Errorf("entries = %d, want %d", st.Entries, totalLoops)
	}
}

// TestAnalyzeSourceCachedMatchesAndSurvivesMutation checks the per-file
// API against the cache and that cached entries are detached from
// returned reports: mutating a result must not poison later hits.
func TestAnalyzeSourceCachedMatchesAndSurvivesMutation(t *testing.T) {
	src := corpusFiles(1)["file_00.c"]
	plain, err := withWorkers(t, 2).AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	e := cachedEngine(t, 2, 256)
	first, err := e.AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, first) {
		t.Error("cached AnalyzeSource differs from uncached")
	}
	// Vandalize the returned reports, then re-analyze from cache.
	for i := range first {
		first[i].Suggestion = "tampered"
		for j := range first[i].Tools {
			first[i].Tools[j].Reason = "tampered"
		}
		if len(first[i].Categories) > 0 {
			first[i].Categories[0] = "tampered"
		}
	}
	again, err := e.AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, again) {
		t.Error("cache entries were corrupted by caller mutation")
	}
}

// TestAnalyzeLoopSnippetCacheDisjointFromFiles pins the key design: the
// same loop text analyzed as a bare snippet (no enclosing file) and as
// part of a file must not share cache entries — their tool verdicts
// differ, so cross-hits would serve wrong reports.
func TestAnalyzeLoopSnippetCacheDisjointFromFiles(t *testing.T) {
	const loopText = "for (i = 0; i < 64; i++) s += a[i];"
	e := cachedEngine(t, 2, 256)
	snippet, err := e.AnalyzeLoop(loopText)
	if err != nil {
		t.Fatal(err)
	}
	again, err := e.AnalyzeLoop(loopText)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snippet, again) {
		t.Error("snippet analysis not deterministic through the cache")
	}
	st, _ := e.CacheStats()
	if st.Hits == 0 {
		t.Error("repeated snippet should hit the cache")
	}
	for _, tv := range snippet.Tools {
		if tv.Tool == "DiscoPoP" && tv.Processable {
			t.Error("snippet verdicts must stay snippet verdicts (no file context)")
		}
	}

	// Now analyze the very same loop text inside a full translation unit
	// on the same cached engine. If the snippet and file key spaces
	// overlapped, the cached snippet report (DiscoPoP: cannot process)
	// would be served here; with file context DiscoPoP must process it.
	src := "int main() {\n    int a[64];\n    int i, s = 0;\n    for (i = 0; i < 64; i++) a[i] = i;\n    " +
		loopText + "\n    return s;\n}\n"
	reports, err := e.AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	var inFile *LoopReport
	for i := range reports {
		if strings.Contains(reports[i].Source, "s += a[i]") {
			inFile = &reports[i]
		}
	}
	if inFile == nil {
		t.Fatal("reduction loop not found in file reports")
	}
	for _, tv := range inFile.Tools {
		if tv.Tool == "DiscoPoP" && !tv.Processable {
			t.Error("file-context analysis was served the snippet's cache entry (DiscoPoP should process with a file)")
		}
	}
}

// TestCacheKeySeparatesIdenticalLoopsOnOneLine is the regression test
// for keying loops by byte offset rather than line: two textually
// identical sibling loops on one source line are distinct program points
// (the first mutates state the second reads), so they must not share a
// cache entry, and the cached run must equal the uncached run exactly.
func TestCacheKeySeparatesIdenticalLoopsOnOneLine(t *testing.T) {
	src := `
int main() {
    int a[16];
    int i, s = 0;
    for (i = 0; i < 16; i++) a[i] = 1;
    for (i = 0; i < 16; i++) s += a[i]; for (i = 0; i < 16; i++) s += a[i];
    return s;
}
`
	plain, err := withWorkers(t, 1).AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	e := cachedEngine(t, 1, 256)
	cold, err := e.AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := e.AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, cold) || !reflect.DeepEqual(plain, warm) {
		t.Error("cached analysis of same-line identical loops differs from uncached")
	}
	st, _ := e.CacheStats()
	if want := uint64(len(plain)); st.Misses != want {
		t.Errorf("misses = %d, want %d (every loop is a distinct program point, none may share keys)", st.Misses, want)
	}
}

// TestAnalyzeFilesCachedDeterministicAcrossWorkers runs the cached engine
// under worker-pool concurrency — with -race this is the cache's
// integration-level concurrency check.
func TestAnalyzeFilesCachedDeterministicAcrossWorkers(t *testing.T) {
	files := corpusFiles(8)
	serial, err := withWorkers(t, 1).AnalyzeFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	e := cachedEngine(t, 8, 2048)
	for pass := 0; pass < 3; pass++ {
		got, err := e.AnalyzeFiles(files)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("pass %d: cached concurrent run differs from serial uncached run", pass)
		}
	}
}

// batchedEngine returns a copy of the shared test engine with the given
// inference batch bound (1 = unbatched, the pre-batching pipeline).
func batchedEngine(t *testing.T, workers, batch int) *Engine {
	t.Helper()
	e := *engine(t)
	e.SetWorkers(workers)
	e.SetBatchSize(batch)
	return &e
}

// TestAnalyzeFilesBatchedByteIdentical is the acceptance check for
// batched inference: the size-bucketed PredictBatch pipeline must produce
// byte-identical reports to the unbatched per-loop pipeline, across batch
// bounds that exercise partial batches, single-graph batches and batches
// spanning many files.
func TestAnalyzeFilesBatchedByteIdentical(t *testing.T) {
	files := corpusFiles(8)
	unbatched, err := batchedEngine(t, 4, 1).AnalyzeFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{2, 3, 16, 1024} {
		got, err := batchedEngine(t, 4, batch).AnalyzeFiles(files)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(unbatched, got) {
			t.Errorf("BatchSize=%d: batched reports differ from unbatched", batch)
		}
	}
	// The zero value must resolve to DefaultBatchSize, not to "off".
	if e := batchedEngine(t, 4, 0); e.BatchSize() != DefaultBatchSize {
		t.Errorf("BatchSize() = %d after SetBatchSize(0), want %d", e.BatchSize(), DefaultBatchSize)
	}
}

// TestAnalyzeSourceBatchedMatchesUnbatched pins the single-file API to the
// same invariant.
func TestAnalyzeSourceBatchedMatchesUnbatched(t *testing.T) {
	src := corpusFiles(1)["file_00.c"]
	unbatched, err := batchedEngine(t, 2, 1).AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := batchedEngine(t, 2, 4).AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(unbatched, batched) {
		t.Error("batched AnalyzeSource differs from unbatched")
	}
}

// TestAnalyzeFilesBatchedCachedByteIdentical composes the two hot-path
// optimizations: with both the analysis cache and batching on, the cold
// pass (misses flow through PredictBatch) and the warm pass (all hits,
// no inference at all) must match the plain engine byte for byte, and the
// cache counters must show the same one-Get-per-loop, one-Put-per-miss
// trajectory as the unbatched cache path.
func TestAnalyzeFilesBatchedCachedByteIdentical(t *testing.T) {
	files := corpusFiles(6)
	plain, err := batchedEngine(t, 4, 1).AnalyzeFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	e := batchedEngine(t, 4, 4)
	e.SetCacheSize(1024)
	cold, err := e.AnalyzeFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := e.AnalyzeFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, cold) {
		t.Error("cold batched+cached run differs from unbatched uncached run")
	}
	if !reflect.DeepEqual(plain, warm) {
		t.Error("warm batched+cached run differs from unbatched uncached run")
	}
	totalLoops := 0
	for name := range plain {
		totalLoops += len(plain[name])
	}
	st, ok := e.CacheStats()
	if !ok {
		t.Fatal("cache should be enabled")
	}
	if st.Misses != uint64(totalLoops) || st.Hits != uint64(totalLoops) {
		t.Errorf("cache counters misses=%d hits=%d, want %d each", st.Misses, st.Hits, totalLoops)
	}
}

// TestAnalyzeFilesBatchedDeterministicAcrossWorkers races the batched
// pipeline (under -race in CI): batches dispatched over 8 workers must
// reproduce the serial unbatched output exactly, pass after pass.
func TestAnalyzeFilesBatchedDeterministicAcrossWorkers(t *testing.T) {
	files := corpusFiles(8)
	serial, err := batchedEngine(t, 1, 1).AnalyzeFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	e := batchedEngine(t, 8, 3)
	for pass := 0; pass < 2; pass++ {
		got, err := e.AnalyzeFiles(files)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("pass %d: batched concurrent run differs from serial unbatched run", pass)
		}
	}
}

func TestAnalyzeFilesEmptyInput(t *testing.T) {
	out, err := withWorkers(t, 4).AnalyzeFiles(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("expected empty result, got %d entries", len(out))
	}
}
