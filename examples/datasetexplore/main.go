// Datasetexplore generates an OMP_Serial corpus, prints its Table 1
// statistics, and shows one concrete loop per pragma category together
// with its heterogeneous aug-AST summary.
package main

import (
	"fmt"

	"graph2par/internal/auggraph"
	"graph2par/internal/dataset"
)

func main() {
	corpus := dataset.Generate(dataset.Config{Scale: 0.02, Seed: 99})
	stats := corpus.ComputeStats()

	fmt.Printf("OMP_Serial corpus: %d loops (%d candidates dropped)\n\n", len(corpus.Samples), corpus.Dropped)
	fmt.Printf("%-26s %6s %9s %7s %7s\n", "Source/Type", "Loops", "FuncCall", "Nested", "AvgLOC")
	for _, key := range stats.Keys() {
		cs := stats.ByKey[key]
		fmt.Printf("%-26s %6d %9d %7d %7.2f\n", key, cs.Loops, cs.Calls, cs.Nested, cs.AvgLOC())
	}

	fmt.Println("\nOne example per category:")
	seen := map[string]bool{}
	for _, s := range corpus.Samples {
		key := s.Category
		if !s.Parallel {
			key = "non-parallel"
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		fmt.Printf("\n--- %s (origin %s) ---\n", key, s.Origin)
		if s.Pragma != "" {
			fmt.Println(s.Pragma)
		}
		fmt.Println(s.LoopSrc)
		g := auggraph.Build(s.Loop, auggraph.Default())
		fmt.Println("aug-AST:", g.Stats())
		if len(seen) == 5 {
			break
		}
	}
}
