// Pragmasuggest analyzes a realistic numerical kernel file and prints the
// suggested OpenMP pragma for every loop, illustrating the suggestion
// workflow of the paper's section 6.4 (the model only suggests; developers
// decide).
package main

import (
	"fmt"
	"log"

	"graph2par"
)

// A small stencil/reduction mix resembling the workloads in the paper's
// motivation (PolyBench-style kernels).
const kernelFile = `
#include <math.h>

int main() {
    double u[258];
    double unew[258];
    double diff[256];
    double err = 0;
    double norm = 0;
    int it, i;

    for (i = 0; i < 258; i++) u[i] = (i % 17) * 0.25;

    /* Jacobi smoothing sweep: independent writes, parallel. */
    for (i = 1; i < 257; i++) {
        unew[i] = (u[i-1] + u[i+1]) * 0.5;
    }

    /* error reduction with a math call: parallel reduction. */
    for (i = 1; i < 257; i++) {
        err = err + fabs(unew[i] - u[i]);
    }

    /* prefix-style update: NOT parallel. */
    for (i = 1; i < 256; i++) {
        diff[i] = diff[i-1] + unew[i];
    }

    /* norm accumulation: parallel reduction. */
    for (i = 0; i < 256; i++) {
        norm += diff[i] * diff[i];
    }

    it = (int)(err + norm);
    return it;
}
`

func main() {
	engine, err := graph2par.NewEngine(graph2par.EngineConfig{
		TrainScale: 0.015,
		Epochs:     4,
		Seed:       11,
	})
	if err != nil {
		log.Fatal(err)
	}
	reports, err := engine.AnalyzeSource(kernelFile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d loops analyzed\n\n", len(reports))
	for _, r := range reports {
		fmt.Printf("line %3d: ", r.Line)
		if r.Parallel {
			if r.Suggestion != "" {
				fmt.Printf("parallel (%.0f%%) — %s\n", 100*r.Confidence, r.Suggestion)
			} else {
				fmt.Printf("parallel (%.0f%%)\n", 100*r.Confidence)
			}
		} else {
			fmt.Printf("keep serial (%.0f%%)\n", 100*r.Confidence)
		}
	}
	fmt.Println("\nAs in the paper, suggestions are advisory: the false-positive")
	fmt.Println("risk is handled by keeping the developer in the loop (section 6.4).")
}
