// Toolcompare reproduces the paper's section 2 motivation: it runs the
// reimplemented autoPar, PLUTO and DiscoPoP on the paper's Listings 1-8 and
// prints which tool misses which loop, and why — plus, as a fourth column,
// this repo's static pragma-safety verifier (internal/verify in derive
// mode), showing where pure static reasoning lands between the tools.
package main

import (
	"fmt"
	"log"

	"graph2par/internal/cast"
	"graph2par/internal/cparse"
	"graph2par/internal/tools"
	"graph2par/internal/tools/autopar"
	"graph2par/internal/tools/discopop"
	"graph2par/internal/tools/pluto"
	"graph2par/internal/tools/staticverify"
)

// Each listing is embedded in a minimal runnable program so the dynamic
// tool can profile it; the analyzed loop is the LAST top-level loop of
// main.
var listings = []struct {
	name string
	src  string
}{
	{"Listing 1 (reduction + fabs call)", `
int main() {
    double a[101]; double error = 0; int i;
    for (i = 0; i < 101; i++) a[i] = i * 0.5;
    for (i = 0; i < 100; i++)
        error = error + fabs(a[i] - a[i+1]);
    return (int)error;
}`},
	{"Listing 3 (user function call)", `
float square(int x) {
    int k = 0;
    while (k < 50) k++;
    return sqrt(x);
}
int main() {
    float vector[16]; int i;
    for (i = 0; i < 16; i++) vector[i] = i;
    for (i = 0; i < 16; i++) {
        vector[i] = square(vector[i]);
    }
    return 0;
}`},
	{"Listing 4 (two-statement reduction)", `
int main() {
    int v = 0; int step = 2; int i;
    for (i = 0; i < 64; i += step) {
        v += 2;
        v = v + step;
    }
    return v;
}`},
	{"Listing 5 (nested counter)", `
int main() {
    int l = 0; int i, j, k;
    for (j = 0; j < 4; j++)
        for (i = 0; i < 5; i++)
            for (k = 0; k < 6; k += 2)
                l++;
    return l;
}`},
	{"Listing 6 (array write + reduction)", `
int main() {
    int a[1000]; int sum = 0; int i;
    for (i = 0; i < 1000; i++) {
        a[i] = i * 2;
        sum += i;
    }
    return sum;
}`},
	{"Listing 7 (2D row reduction)", `
int main() {
    double a[8][1000]; double v[1000]; double sum = 0;
    int i = 3; int j;
    for (j = 0; j < 1000; j++) v[j] = j;
    for (j = 0; j < 1000; j++) {
        sum += a[i][j] * v[j];
    }
    return (int)sum;
}`},
	{"Listing 8 (nested temp)", `
int main() {
    double a[12][12][12]; double tmp1; double m = 3.0;
    int i, j, k;
    for (i = 0; i < 12; i++) {
        for (j = 0; j < 12; j++) {
            for (k = 0; k < 12; k++) {
                tmp1 = 6.0 / m;
                a[i][j][k] = tmp1 + 4;
            }
        }
    }
    return (int)a[5][5][5];
}`},
}

func main() {
	kit := []tools.Tool{autopar.New(), pluto.New(), discopop.New(), staticverify.New()}
	fmt.Println("Paper section 2: what the algorithm-based tools miss")
	fmt.Println("(every loop below is genuinely parallel)")
	fmt.Println()
	for _, l := range listings {
		file, err := cparse.ParseFile(l.src)
		if err != nil {
			log.Fatalf("%s: %v", l.name, err)
		}
		loop := lastLoop(file)
		fmt.Println(l.name)
		for _, tool := range kit {
			v := tool.Analyze(tools.Sample{Loop: loop, File: file, Compilable: true, Runnable: true})
			verdict := "MISS"
			if !v.Processable {
				verdict = "cannot process"
			} else if v.Parallel {
				verdict = "detects"
			}
			fmt.Printf("  %-12s %-15s %s\n", tool.Name(), verdict, v.Reason)
		}
		fmt.Println()
	}
}

func lastLoop(f *cast.File) cast.Stmt {
	fn := f.Funcs[len(f.Funcs)-1]
	var last cast.Stmt
	for _, it := range fn.Body.Items {
		switch it.(type) {
		case *cast.For, *cast.While:
			last = it
		}
	}
	return last
}
