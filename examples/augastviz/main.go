// Augastviz renders the heterogeneous aug-AST of the paper's Listing 1 in
// Graphviz DOT format — the programmatic equivalent of Figure 3. Pipe the
// output through `dot -Tsvg` to see the AST (black), CFG (red) and lexical
// (orange, dashed) edge families.
package main

import (
	"fmt"
	"log"

	"graph2par/internal/auggraph"
	"graph2par/internal/cparse"
)

const listing1 = `for (i = 0; i < 30000000; i++)
    error = error + fabs(a[i] - a[i+1]);`

func main() {
	loop, err := cparse.ParseStmt(listing1)
	if err != nil {
		log.Fatal(err)
	}

	full := auggraph.Build(loop, auggraph.Default())
	fmt.Println(full.DOT("Listing 1 — heterogeneous aug-AST (Figure 3)"))

	// Also show what each augmentation adds.
	fmt.Printf("// vanilla AST : %s\n", auggraph.Build(loop, auggraph.VanillaAST()).Stats())
	fmt.Printf("// + CFG       : %s\n", auggraph.Build(loop, auggraph.Options{CFG: true, Normalize: true}).Stats())
	fmt.Printf("// + lexical   : %s\n", full.Stats())
	fmt.Printf("// normalization map: %d variables -> v1..v%d, %d callees -> f1..f%d\n",
		full.NumVars, full.NumVars, full.NumFuncs, full.NumFuncs)
}
