// Quickstart: train a Graph2Par engine on a small generated OMP_Serial
// corpus and ask it about the paper's Listing 1 — the reduction loop with a
// fabs() call that all three algorithm-based tools miss.
package main

import (
	"fmt"
	"log"

	"graph2par"
)

const listing1Program = `
#include <math.h>
int main() {
    double a[128];
    double error = 0;
    int i;
    for (i = 0; i < 128; i++) a[i] = i * 0.5;
    for (i = 0; i < 127; i++)
        error = error + fabs(a[i] - a[i+1]);
    return (int)error;
}
`

func main() {
	engine, err := graph2par.NewEngine(graph2par.EngineConfig{
		TrainScale: 0.015,
		Epochs:     4,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}

	reports, err := engine.AnalyzeSource(listing1Program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nListing 1 program: %d loops analyzed\n\n", len(reports))
	for _, r := range reports {
		fmt.Print(r.Format())
		fmt.Println()
	}
	fmt.Println("The second loop is the paper's Listing 1: the three tools")
	fmt.Println("fail on the fabs() call while the learned model sees the")
	fmt.Println("reduction structure through the aug-AST.")
}
