// Package graph2par is the public API of the Graph2Par reproduction
// (Chen et al., "Learning to Parallelize with OpenMP by Augmented
// Heterogeneous AST Representation", MLSys 2023).
//
// The Engine wraps the whole pipeline: it parses C source, extracts loops,
// builds the heterogeneous augmented AST of each loop, classifies
// parallelism with a trained Heterogeneous Graph Transformer, predicts the
// applicable OpenMP pragma categories, and cross-checks against the three
// reimplemented algorithm-based tools (autoPar, PLUTO, DiscoPoP).
//
// A quick start:
//
//	engine, err := graph2par.NewEngine(graph2par.EngineConfig{})
//	reports, err := engine.AnalyzeSource(src)
//	for _, r := range reports {
//	    fmt.Println(r.Line, r.Parallel, r.Suggestion)
//	}
package graph2par

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"graph2par/internal/auggraph"
	"graph2par/internal/cache"
	"graph2par/internal/cast"
	"graph2par/internal/dataset"
	"graph2par/internal/frontend"
	"graph2par/internal/hgt"
	"graph2par/internal/parallel"
	"graph2par/internal/pragma"
	"graph2par/internal/rewrite"
	"graph2par/internal/tools"
	"graph2par/internal/tools/autopar"
	"graph2par/internal/tools/discopop"
	"graph2par/internal/tools/pluto"
	"graph2par/internal/train"
	"graph2par/internal/verify"
)

// EngineConfig controls engine construction.
type EngineConfig struct {
	// ModelPath loads a trained checkpoint instead of training.
	ModelPath string
	// TrainScale is the OMP_Serial scale factor used when training from
	// scratch (default 0.02, a few hundred loops).
	TrainScale float64
	// Seed makes from-scratch training reproducible.
	Seed uint64
	// Epochs for from-scratch training (default 6).
	Epochs int
	// Quiet suppresses the training progress line.
	Quiet bool
	// Workers bounds the worker pool used by AnalyzeSource, AnalyzeFiles
	// and the graph-preparation sweep of from-scratch training. Values
	// < 1 mean runtime.GOMAXPROCS(0).
	Workers int
	// TrainWorkers bounds the data-parallel gradient workers of
	// from-scratch training (< 1 → GOMAXPROCS). Training is bit-identical
	// at every worker count (see train.Options.Workers), so this knob
	// trades wall-clock for cores without changing the model by a single
	// byte.
	TrainWorkers int
	// CacheSize enables the content-addressed analysis cache: up to this
	// many loop reports are kept in a sharded LRU keyed by the loop's
	// normalized source, its translation-unit content, the graph options
	// and the model fingerprint, so re-analyzing identical input skips
	// the aug-AST build, HGT inference and tool cross-checks entirely
	// while staying byte-for-byte identical to an uncached run. 0 (the
	// zero value) disables caching.
	CacheSize int
	// BatchSize bounds how many loop graphs share one HGT forward pass:
	// Analyze* methods group cache-missing loops into size-bucketed
	// batches of at most this many graphs and score each batch with
	// hgt.Model.PredictBatch, amortizing per-graph op dispatch without
	// changing a single output bit. 0 (the zero value) means
	// DefaultBatchSize; 1 disables batching (one forward pass per loop,
	// the pre-batching behaviour).
	BatchSize int
	// Verify enables the post-inference static verification stage: every
	// suggested pragma is re-checked by internal/verify's flow-sensitive
	// analyses and the verdict (safe / unknown / unsafe, with reasons and
	// positions) is attached to the report — and cached alongside it, since
	// the content-addressed key already fingerprints every verdict input.
	Verify bool
	// Rewrite enables the source-to-source output stage: every loop the
	// model predicts parallel gets a rewrite plan — derived clause lists
	// gated through the static verifier and validated dynamically (see
	// internal/rewrite) — attached to its report, and Engine.RewriteSource
	// splices the accepted plans into transformed C. Independent of Verify:
	// the rewriter always runs the full check suite on its own derived
	// pragmas.
	Rewrite bool
}

// DefaultBatchSize is the inference batch bound used when
// EngineConfig.BatchSize is left zero: large enough to amortize op
// dispatch, small enough that a typical corpus still splits into more
// batches than workers.
const DefaultBatchSize = 16

// Engine is a ready-to-use Graph2Par analyzer.
//
// Once constructed, an Engine is safe for concurrent use: analysis only
// reads the trained model, the vocabulary and the (stateless) comparator
// tools. See hgt.Model.Predict and auggraph.Vocab.Encode for the
// underlying guarantees.
type Engine struct {
	model   *hgt.Model
	vocab   *auggraph.Vocab
	gopts   auggraph.Options
	tools   []tools.Tool
	workers int
	batch   int

	// cache is the optional content-addressed report cache (nil when
	// disabled); fingerprint identifies the loaded weights + vocabulary +
	// graph options and is folded into every cache key, so a cache can
	// never serve results computed by a different model.
	cache       *cache.Cache[LoopReport]
	fingerprint string

	// fill, when set, is consulted on a local cache miss before the loop
	// is recomputed: the peer-fill tier (internal/peercache) plugs in here
	// so a miss on this replica can be served from the owning replica's
	// cache. A successful fill is stored locally and is required to be
	// byte-identical to a local recompute (the content-addressed key
	// covers every analysis input, including the model fingerprint, so
	// only a same-model replica can ever answer). Nil when no peer tier
	// is configured; only consulted when the cache is enabled.
	fill CacheFiller

	// warmHook, when set, is told about every locally computed report the
	// moment it is cached: the peer tier's push-warming
	// (internal/peercache Client.Warm) plugs in here to replicate the
	// entry to the key's other rendezvous owners, so an owner restart no
	// longer loses its shard and the fleet converges without waiting for
	// pull-side misses. Nil when warming is not configured; only invoked
	// while the cache is enabled.
	warmHook CacheWarmer

	// verify gates the static pragma-safety stage; vstats counts issued
	// verdicts per level. The counters are held by pointer for the same
	// reason fe is: benchmarks copy an Engine to retune knobs, and a copied
	// atomic counter would silently fork the tally.
	verify bool
	vstats *verifyStats

	// rewrite gates the source-to-source output stage; rstats counts
	// issued rewrite plans per status (same pointer rationale as vstats).
	rewrite bool
	rstats  *rewriteStats

	// fe recycles per-worker front-end scratches (token buffers, AST
	// slabs, graph and encoding storage, symbol tables) across Analyze*
	// calls: each call checks out one scratch per parse/analysis worker
	// it actually uses, builds every AST and aug-AST of the request in
	// them, and returns them — reset — when the last report string has
	// been assembled. Outputs never reference scratch memory, so
	// recycling cannot change a byte. The pool is held by pointer so
	// copies of an Engine (the benchmarks copy one to retune knobs)
	// share one coherent pool instead of aliasing a mutex and free list.
	fe *frontend.Pool
}

// ToolVerdict is one comparator tool's opinion on a loop.
type ToolVerdict struct {
	Tool        string
	Processable bool
	Parallel    bool
	Reason      string
}

// LoopReport is the analysis result for one loop.
type LoopReport struct {
	// Line is the loop's 1-based source line.
	Line int
	// Source is the loop's normalized source text.
	Source string
	// Parallel is the model's parallelism prediction.
	Parallel bool
	// Confidence is the softmax probability of the predicted class.
	Confidence float64
	// Categories are the predicted pragma categories (only the heuristic
	// structural classification; the per-category heads of Table 5 are
	// trained separately by the experiment harness).
	Categories []pragma.Category
	// Suggestion is a ready-to-paste pragma line ("" when not parallel).
	Suggestion string
	// Tools holds the comparator verdicts.
	Tools []ToolVerdict
	// GraphStats summarizes the loop's aug-AST.
	GraphStats string
	// DOT is the Graphviz rendering of the loop's aug-AST.
	DOT string
	// Verdict is the static verifier's ruling on Suggestion (nil when
	// verification is disabled or the loop is not predicted parallel).
	Verdict *verify.Verdict
	// Rewrite is the source-to-source plan for this loop (nil when the
	// rewrite stage is disabled or the loop is not predicted parallel).
	// Its status reflects the per-loop gates; Engine.RewriteSource may
	// still demote it at splice time (nesting, byte-level checks).
	Rewrite *rewrite.LoopPlan
}

// NewEngine builds an engine: either loading ModelPath or training a fresh
// model on a generated OMP_Serial corpus.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	e := &Engine{
		tools:   []tools.Tool{autopar.New(), pluto.New(), discopop.New()},
		workers: parallel.Workers(cfg.Workers),
		fe:      &frontend.Pool{},
		verify:  cfg.Verify,
		vstats:  &verifyStats{},
		rewrite: cfg.Rewrite,
		rstats:  &rewriteStats{},
	}
	e.SetBatchSize(cfg.BatchSize)
	if cfg.ModelPath != "" {
		model, vocab, gopts, err := train.LoadCheckpoint(cfg.ModelPath)
		if err != nil {
			return nil, fmt.Errorf("graph2par: loading model: %w", err)
		}
		e.model, e.vocab, e.gopts = model, vocab, gopts
		e.SetCacheSize(cfg.CacheSize)
		return e, nil
	}
	if cfg.TrainScale <= 0 {
		cfg.TrainScale = 0.02
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 6
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1234
	}
	if !cfg.Quiet {
		fmt.Printf("graph2par: training on OMP_Serial (scale %.3f)...\n", cfg.TrainScale)
	}
	corpus := dataset.Generate(dataset.Config{Scale: cfg.TrainScale, Seed: cfg.Seed})
	opts := train.DefaultOptions()
	opts.Epochs = cfg.Epochs
	opts.Seed = cfg.Seed
	opts.Workers = cfg.TrainWorkers
	set := train.PrepareGraphsN(cfg.Workers, corpus.Samples, opts.Graph, nil, train.ParallelLabel)
	e.model = train.TrainHGT(set, opts)
	e.vocab = set.Vocab
	e.gopts = opts.Graph
	e.SetCacheSize(cfg.CacheSize)
	return e, nil
}

// Save writes the engine's model to a checkpoint file.
func (e *Engine) Save(path string) error {
	return train.SaveCheckpoint(path, e.model, e.vocab, e.gopts)
}

// SetWorkers re-bounds the analysis worker pool (values < 1 mean
// runtime.GOMAXPROCS(0)). It must not be called concurrently with
// Analyze* methods.
func (e *Engine) SetWorkers(n int) { e.workers = parallel.Workers(n) }

// Workers returns the current analysis worker-pool bound.
func (e *Engine) Workers() int { return e.workers }

// SetBatchSize re-bounds the inference batch (0 means DefaultBatchSize,
// 1 disables batching; see EngineConfig.BatchSize). It must not be called
// concurrently with Analyze* methods.
func (e *Engine) SetBatchSize(n int) {
	switch {
	case n <= 0:
		e.batch = DefaultBatchSize
	default:
		e.batch = n
	}
}

// BatchSize returns the current inference batch bound (1 = unbatched).
func (e *Engine) BatchSize() int { return e.batch }

// SetCacheSize replaces the analysis cache with a fresh one of the given
// entry capacity (≤ 0 disables caching). The model fingerprint is
// computed here, once, from the weights, vocabulary and graph options. It
// must not be called concurrently with Analyze* methods.
func (e *Engine) SetCacheSize(n int) {
	if n <= 0 {
		e.cache = nil
		return
	}
	e.cache = cache.New[LoopReport](n)
	e.fingerprint = modelFingerprint(e.model, e.vocab, e.gopts)
}

// CacheStats returns a snapshot of the analysis-cache counters; ok is
// false when caching is disabled.
func (e *Engine) CacheStats() (st cache.Stats, ok bool) {
	if e.cache == nil {
		return cache.Stats{}, false
	}
	return e.cache.Stats(), true
}

// CacheFiller is the peer-fill hook: given a loop's content-addressed
// cache key it either produces the finished report (ok true) or reports
// a miss, in which case the engine recomputes locally. Implementations
// must be safe for concurrent use and should bound their own latency —
// the analysis pipeline blocks on them per cache-missing loop.
type CacheFiller func(key string) (LoopReport, bool)

// SetCacheFiller installs (or, with nil, removes) the peer-fill hook
// consulted on local cache misses. It must not be called concurrently
// with Analyze* methods. The hook is only consulted while the cache is
// enabled: a fill is immediately stored locally, so it is pointless —
// and therefore skipped — without somewhere to put it.
func (e *Engine) SetCacheFiller(f CacheFiller) { e.fill = f }

// CacheWarmer is the push-warming hook: it receives every locally
// computed report together with its content-addressed cache key, right
// after the report is stored in this replica's cache. Implementations
// must be safe for concurrent use and must not block — the analysis
// pipeline calls them inline from its workers (internal/peercache
// enqueues onto a bounded queue and pushes from its own goroutine).
// The report is a detached copy the hook owns.
type CacheWarmer func(key string, r LoopReport)

// SetCacheWarmer installs (or, with nil, removes) the push-warming hook
// invoked after each locally computed report is cached. It must not be
// called concurrently with Analyze* methods. Like the fill hook it is
// only consulted while the cache is enabled: without a cache there are
// no keys to replicate.
func (e *Engine) SetCacheWarmer(f CacheWarmer) { e.warmHook = f }

// InstallCached stores a peer-pushed report under its content-addressed
// key — the write side of the POST /v1/cache/<key> warming protocol.
// The caller (internal/serve) is responsible for authenticating that
// the pusher serves the same model fingerprint; the key itself embeds
// the fingerprint too, so a mis-pushed entry could never be served to a
// different model's lookup, only waste a cache slot. Returns false when
// caching is disabled.
func (e *Engine) InstallCached(key string, r LoopReport) bool {
	if e.cache == nil {
		return false
	}
	e.cache.Put(key, cloneReport(r))
	return true
}

// PeekCached returns the cached report for a raw content-addressed key
// without touching the hit/miss counters or the LRU order — the lookup
// the /v1/cache/<key> peer protocol serves, which must not distort the
// replica's own cache telemetry. ok is false when caching is disabled or
// the key is absent.
func (e *Engine) PeekCached(key string) (LoopReport, bool) {
	if e.cache == nil {
		return LoopReport{}, false
	}
	r, ok := e.cache.Peek(key)
	if !ok {
		return LoopReport{}, false
	}
	return cloneReport(r), true
}

// Fingerprint returns the model fingerprint folded into every cache key
// ("" until SetCacheSize computes it). Replicas exchange it at peer-fill
// setup to assert they serve the same model.
func (e *Engine) Fingerprint() string { return e.fingerprint }

// verifyStats tallies issued verdicts per lattice level. Counters are
// atomic because finishLoop runs concurrently across the worker pool.
type verifyStats struct {
	safe    atomic.Uint64
	unknown atomic.Uint64
	unsafe  atomic.Uint64
}

func (s *verifyStats) count(l verify.Level) {
	switch l {
	case verify.Safe:
		s.safe.Add(1)
	case verify.Unknown:
		s.unknown.Add(1)
	case verify.Unsafe:
		s.unsafe.Add(1)
	}
}

// VerifyStats is a snapshot of the verdicts issued so far, keyed by level.
type VerifyStats struct {
	Safe    uint64
	Unknown uint64
	Unsafe  uint64
}

// SetVerify toggles the static verification stage. It must not be called
// concurrently with Analyze* methods. Note that with caching enabled a
// report computed while verification was off (and therefore carrying no
// verdict) can be served from the cache afterwards; flip the stage before
// the first request, or call SetCacheSize to drop stale entries.
func (e *Engine) SetVerify(on bool) { e.verify = on }

// rewriteStats tallies issued rewrite plans per status. Counters are
// atomic because finishLoop runs concurrently across the worker pool.
type rewriteStats struct {
	rewritten  atomic.Uint64
	atomic     atomic.Uint64
	suggestion atomic.Uint64
}

func (s *rewriteStats) count(st rewrite.Status) {
	switch st {
	case rewrite.StatusRewritten:
		s.rewritten.Add(1)
	case rewrite.StatusAtomic:
		s.atomic.Add(1)
	case rewrite.StatusSuggestion:
		s.suggestion.Add(1)
	}
}

// RewriteStats is a snapshot of the rewrite plans issued so far, keyed by
// the status PlanLoop assigned (splice-time demotions are not re-counted).
type RewriteStats struct {
	Rewritten  uint64
	Atomic     uint64
	Suggestion uint64
}

// SetRewrite toggles the source-to-source rewrite stage. It must not be
// called concurrently with Analyze* methods; the cache-staleness caveat on
// SetVerify applies to rewrite plans the same way.
func (e *Engine) SetRewrite(on bool) { e.rewrite = on }

// RewriteEnabled reports whether loops get source-to-source rewrite plans.
func (e *Engine) RewriteEnabled() bool { return e.rewrite }

// RewriteStats returns the issued-plan counters; ok is false when the
// rewrite stage is disabled.
func (e *Engine) RewriteStats() (st RewriteStats, ok bool) {
	if !e.rewrite {
		return RewriteStats{}, false
	}
	return RewriteStats{
		Rewritten:  e.rstats.rewritten.Load(),
		Atomic:     e.rstats.atomic.Load(),
		Suggestion: e.rstats.suggestion.Load(),
	}, true
}

// VerifyEnabled reports whether suggestions are statically verified.
func (e *Engine) VerifyEnabled() bool { return e.verify }

// VerifyStats returns the issued-verdict counters; ok is false when the
// verification stage is disabled.
func (e *Engine) VerifyStats() (st VerifyStats, ok bool) {
	if !e.verify {
		return VerifyStats{}, false
	}
	return VerifyStats{
		Safe:    e.vstats.safe.Load(),
		Unknown: e.vstats.unknown.Load(),
		Unsafe:  e.vstats.unsafe.Load(),
	}, true
}

// modelFingerprint hashes everything the analysis result depends on
// besides the input source: hyperparameters, every weight matrix, the
// vocabulary tables and the graph options. Folding it into each cache key
// makes invalidation structural — a different (retrained, reloaded,
// differently configured) model can never hit entries of another.
func modelFingerprint(m *hgt.Model, v *auggraph.Vocab, gopts auggraph.Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "cfg:%+v|graph:%t%t%t%t|", m.Cfg, gopts.CFG, gopts.Lexical, gopts.Reverse, gopts.Normalize)
	buf := make([]byte, 8)
	for _, p := range m.Params.All() {
		fmt.Fprintf(h, "%s:%dx%d:", p.Name, p.W.Rows, p.W.Cols)
		for _, w := range p.W.Data {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(w))
			h.Write(buf)
		}
	}
	for _, table := range [][]string{v.KindNames(), v.AttrNames(), v.TypeNames()} {
		for _, s := range table {
			h.Write([]byte(s))
			h.Write([]byte{0})
		}
		h.Write([]byte{1})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// sourceCacheKey condenses one translation unit's content for cache-key
// purposes. The "file:" prefix keeps it disjoint from the no-context
// marker used by AnalyzeLoop snippets.
func sourceCacheKey(src string) string {
	sum := sha256.Sum256([]byte(src))
	return "file:" + hex.EncodeToString(sum[:])
}

// snippetCacheKey marks loops analyzed without an enclosing file: their
// tool verdicts differ from the with-file case, so the two must never
// share cache entries.
const snippetCacheKey = "snippet"

// loopCacheKey derives the content-addressed key for one loop: model
// fingerprint (which covers graph options) + translation-unit content +
// source position + normalized loop source. The byte offset (not just the
// line) disambiguates textually identical loops whose dynamic tool
// verdicts could differ with program point — including two identical
// sibling loops sharing one source line.
func (e *Engine) loopCacheKey(loop cast.Stmt, fileKey string) string {
	h := sha256.New()
	pos := loop.Pos()
	fmt.Fprintf(h, "%s\x00%s\x00%d:%d\x00%s", e.fingerprint, fileKey, pos.Offset, pos.Line, cast.Print(loop))
	return hex.EncodeToString(h.Sum(nil))
}

// cloneReport returns a copy whose slices are detached from r, so cached
// reports are immune to caller mutation.
func cloneReport(r LoopReport) LoopReport {
	if r.Categories != nil {
		r.Categories = append([]pragma.Category(nil), r.Categories...)
	}
	if r.Tools != nil {
		r.Tools = append([]ToolVerdict(nil), r.Tools...)
	}
	if r.Verdict != nil {
		v := *r.Verdict
		if v.Findings != nil {
			v.Findings = append([]verify.Finding(nil), v.Findings...)
		}
		r.Verdict = &v
	}
	r.Rewrite = r.Rewrite.Clone()
	return r
}

// scratchSet is one Analyze* call's demand-driven scratch checkout: it
// grows to the number of workers a stage actually uses (a one-file
// request on a 32-core server should pin one bundle, not 32) and returns
// everything to the pool when the call finishes.
type scratchSet struct {
	pool *frontend.Pool
	scrs []*frontend.Scratch
}

// ensure grows the checkout to at least n scratches and returns them.
func (s *scratchSet) ensure(n int) []*frontend.Scratch {
	for len(s.scrs) < n {
		s.scrs = append(s.scrs, s.pool.Get())
	}
	return s.scrs
}

// release returns every checked-out scratch. Everything built through
// them becomes invalid.
func (s *scratchSet) release() {
	s.pool.PutAll(s.scrs)
	s.scrs = nil
}

// stageWorkers bounds a fan-out stage's worker count by its item count —
// the same clamp ForEachWorker applies — so ensure() checks out exactly
// the scratches the stage can touch.
func (e *Engine) stageWorkers(items int) int {
	w := e.workers
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// AnalyzeSource parses a C translation unit and reports on every loop.
// Loops are analyzed concurrently over the engine's worker pool; the
// returned reports are sorted by source line regardless of worker count,
// so results are identical to a serial run.
func (e *Engine) AnalyzeSource(src string) ([]LoopReport, error) {
	return e.AnalyzeSourceContext(context.Background(), src)
}

// AnalyzeSourceContext is AnalyzeSource with cooperative cancellation:
// the pipeline checks ctx between stages and between loops, so a caller
// whose deadline has passed (or whose client hung up) stops burning CPU
// at the next stage boundary instead of completing the whole analysis.
// On cancellation it returns ctx's error and no reports; an individual
// forward pass or tool run is never interrupted mid-flight, so partial
// results already computed still land in the cache for the next caller.
func (e *Engine) AnalyzeSourceContext(ctx context.Context, src string) ([]LoopReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ss := &scratchSet{pool: e.fe}
	defer ss.release()
	file, err := ss.ensure(1)[0].Parse.ParseFile(src)
	if err != nil {
		return nil, err
	}
	fileKey := ""
	if e.cache != nil {
		fileKey = sourceCacheKey(src)
	}
	reports := e.analyzeFileLoops(ctx, file, fileKey, ss)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return reports, nil
}

// RewriteResult is one translation unit's source-to-source rewrite: the
// transformed source (equal to the input when nothing was accepted) and
// the full per-loop reports whose Rewrite plans carry the final,
// splice-checked statuses.
type RewriteResult struct {
	Output  string
	Changed bool
	Reports []LoopReport
}

// RewriteSource analyzes a translation unit with the model in the loop —
// only loops predicted parallel get rewrite plans — and splices the
// accepted plans into the source. Requires the rewrite stage (see
// EngineConfig.Rewrite / SetRewrite).
func (e *Engine) RewriteSource(src string) (*RewriteResult, error) {
	return e.RewriteSourceContext(context.Background(), src)
}

// RewriteSourceContext is RewriteSource with cooperative cancellation
// (see AnalyzeSourceContext for the semantics).
func (e *Engine) RewriteSourceContext(ctx context.Context, src string) (*RewriteResult, error) {
	if !e.rewrite {
		return nil, fmt.Errorf("graph2par: rewrite stage is disabled")
	}
	reports, err := e.AnalyzeSourceContext(ctx, src)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var plans []*rewrite.LoopPlan
	for i := range reports {
		if reports[i].Rewrite != nil {
			plans = append(plans, reports[i].Rewrite)
		}
	}
	out, changed, err := rewrite.Apply(src, plans)
	if err != nil {
		return nil, err
	}
	return &RewriteResult{Output: out, Changed: changed, Reports: reports}, nil
}

// collectLoops harvests a parsed file's loops and its defined-function
// map — the shared front half of AnalyzeSource and AnalyzeFiles.
func collectLoops(file *cast.File) (map[string]*cast.FuncDecl, []cast.Stmt) {
	funcs := map[string]*cast.FuncDecl{}
	for _, fn := range file.Funcs {
		if fn.Body != nil {
			funcs[fn.Name] = fn
		}
	}
	var loops []cast.Stmt
	for _, fn := range file.Funcs {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			switch n.(type) {
			case *cast.For, *cast.While:
				loops = append(loops, n.(cast.Stmt))
			}
			return true
		})
	}
	return funcs, loops
}

// analyzeFileLoops fans loop analysis of one parsed file out over the
// worker pool, preserving line-sorted output.
func (e *Engine) analyzeFileLoops(ctx context.Context, file *cast.File, fileKey string, ss *scratchSet) []LoopReport {
	funcs, loops := collectLoops(file)
	jobs := make([]loopJob, len(loops))
	for i, loop := range loops {
		jobs[i] = loopJob{loop: loop, file: file, funcs: funcs, fileKey: fileKey}
	}
	reports := e.analyzeJobs(ctx, jobs, ss)
	sort.SliceStable(reports, func(i, j int) bool { return reports[i].Line < reports[j].Line })
	return reports
}

// loopJob bundles one loop with the file context its analysis needs.
type loopJob struct {
	loop    cast.Stmt
	file    *cast.File
	funcs   map[string]*cast.FuncDecl
	fileKey string
}

// analyzeJobs analyzes jobs[i] into slot i of the result, spreading work
// over the engine's worker pool. With batching disabled (batch ≤ 1) each
// loop runs the whole per-loop pipeline on its own worker; otherwise
// inference is lifted out of the per-loop path: every cache-missing loop's
// aug-AST is built concurrently, the misses are grouped into size-bucketed
// batches of at most e.batch graphs, each batch is scored in one
// PredictBatch forward pass, and the remaining per-loop work (pragma
// synthesis, tool cross-checks, cache fill) fans back out. Both paths
// produce byte-identical reports — PredictBatch is bit-identical to
// Predict — and identical cache-counter trajectories (one Get per loop,
// one Put per miss).
//
// Cancellation is cooperative: ctx is checked at every stage boundary and
// between per-loop work items, never inside a forward pass. Once ctx is
// done the remaining work is skipped; the caller discards the (partial)
// result after its own ctx check, so a half-filled slice never escapes.
func (e *Engine) analyzeJobs(ctx context.Context, jobs []loopJob, ss *scratchSet) []LoopReport {
	reports := make([]LoopReport, len(jobs))
	if len(jobs) == 0 {
		return reports
	}
	scrs := ss.ensure(e.stageWorkers(len(jobs)))
	if e.batch <= 1 {
		parallel.ForEachWorker(e.workers, len(jobs), func(w, i int) {
			if ctx.Err() != nil {
				return
			}
			reports[i] = e.analyzeLoop(jobs[i], scrs[w])
		})
		return reports
	}

	// Stage A: cache probe + aug-AST construction, one worker per loop.
	// Graphs and encodings land in the worker's scratch and stay valid
	// through stages B and C (the caller releases the scratches only after
	// every report is assembled).
	type prepared struct {
		key string
		g   *auggraph.Graph
		enc *auggraph.Encoded
		hit bool
	}
	preps := make([]prepared, len(jobs))
	parallel.ForEachWorker(e.workers, len(jobs), func(w, i int) {
		if ctx.Err() != nil {
			return
		}
		if e.cache != nil {
			preps[i].key = e.loopCacheKey(jobs[i].loop, jobs[i].fileKey)
			if r, ok := e.cache.Get(preps[i].key); ok {
				reports[i] = cloneReport(r)
				preps[i].hit = true
				return
			}
			if r, ok := e.peerFill(preps[i].key); ok {
				reports[i] = r
				preps[i].hit = true
				return
			}
		}
		preps[i].g, preps[i].enc = e.buildGraph(jobs[i], scrs[w])
	})
	if ctx.Err() != nil {
		return reports
	}

	// Stage B: size-bucketed batched inference. Sorting misses by node
	// count groups similar-sized graphs so each forward pass does evenly
	// sized row blocks; the stable sort keeps the bucketing deterministic.
	var miss []int
	for i := range preps {
		if !preps[i].hit {
			miss = append(miss, i)
		}
	}
	sort.SliceStable(miss, func(a, b int) bool {
		return len(preps[miss[a]].enc.KindIDs) < len(preps[miss[b]].enc.KindIDs)
	})
	preds := make([]int, len(jobs))
	probs := make([][]float64, len(jobs))
	// Chunk bound: at most e.batch graphs per forward pass, but never so
	// few batches that workers idle — a small workload (one file's worth
	// of loops) still spreads across the pool instead of serializing into
	// a single pass. Chunking never affects output: PredictBatch is
	// bit-identical per graph for any batch composition.
	chunk := (len(miss) + e.workers - 1) / e.workers
	if chunk > e.batch {
		chunk = e.batch
	}
	if chunk < 1 {
		chunk = 1
	}
	numBatches := (len(miss) + chunk - 1) / chunk
	parallel.ForEach(e.workers, numBatches, func(bi int) {
		if ctx.Err() != nil {
			return
		}
		lo := bi * chunk
		hi := lo + chunk
		if hi > len(miss) {
			hi = len(miss)
		}
		idx := miss[lo:hi]
		encs := make([]*auggraph.Encoded, len(idx))
		for k, i := range idx {
			encs[k] = preps[i].enc
		}
		ps, prb := e.model.PredictBatch(encs)
		for k, i := range idx {
			preds[i], probs[i] = ps[k], prb[k]
		}
	})
	if ctx.Err() != nil {
		return reports
	}

	// Stage C: per-loop report assembly, tool cross-checks and cache fill.
	parallel.ForEach(e.workers, len(miss), func(k int) {
		if ctx.Err() != nil {
			return
		}
		i := miss[k]
		reports[i] = e.finishLoop(jobs[i], preps[i].g, preps[i].key, preds[i], probs[i])
	})
	return reports
}

// peerFill consults the peer-fill hook for one cache-missing key and, on
// success, stores the fetched report locally so the next identical loop
// is a plain local hit. The returned report is detached from the cached
// copy the same way a Get hit is.
func (e *Engine) peerFill(key string) (LoopReport, bool) {
	if e.fill == nil {
		return LoopReport{}, false
	}
	r, ok := e.fill(key)
	if !ok {
		return LoopReport{}, false
	}
	e.cache.Put(key, cloneReport(r))
	return r, true
}

// AnalyzeFiles analyzes a whole corpus of C sources, keyed by file name,
// in one batched pass: parsing, aug-AST construction, HGT inference and
// the tool cross-checks are pipelined across files and loops over the
// engine's worker pool. The result maps each file name to its line-sorted
// reports — byte-for-byte identical to calling AnalyzeSource per file.
//
// Files that fail to parse are omitted from the result; their errors are
// combined (in file-name order, so the message is deterministic) into the
// returned error alongside the successful results.
func (e *Engine) AnalyzeFiles(sources map[string]string) (map[string][]LoopReport, error) {
	return e.AnalyzeFilesContext(context.Background(), sources)
}

// AnalyzeFilesContext is AnalyzeFiles with cooperative cancellation (see
// AnalyzeSourceContext for the semantics): on cancellation it returns
// ctx's error and no results.
func (e *Engine) AnalyzeFilesContext(ctx context.Context, sources map[string]string) (map[string][]LoopReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)

	// Stage 1: parse every file concurrently into per-worker scratch
	// sessions; the ASTs live until the deferred scratch release below,
	// past the last stage that reads them.
	ss := &scratchSet{pool: e.fe}
	defer ss.release()
	scrs := ss.ensure(e.stageWorkers(len(names)))
	files := make([]*cast.File, len(names))
	errs := make([]error, len(names))
	parallel.ForEachWorker(e.workers, len(names), func(w, i int) {
		if ctx.Err() != nil {
			return
		}
		files[i], errs[i] = scrs[w].Parse.ParseFile(sources[names[i]])
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 2: flatten loops of every parsed file into one work list so
	// a file with many loops keeps every worker busy.
	var jobs []loopJob
	var jobFile []int // job index → file index, for the per-file regroup
	for i, file := range files {
		if file == nil {
			continue
		}
		funcs, loops := collectLoops(file)
		fileKey := ""
		if e.cache != nil {
			fileKey = sourceCacheKey(sources[names[i]])
		}
		for _, loop := range loops {
			jobs = append(jobs, loopJob{loop: loop, file: file, funcs: funcs, fileKey: fileKey})
			jobFile = append(jobFile, i)
		}
	}

	// Stage 3: analyze every loop of every file over the worker pool —
	// size-bucketed batched inference when batching is enabled, one
	// forward pass per loop otherwise. Each report lands in its own slot
	// so output order is scheduling-independent either way.
	loopReports := e.analyzeJobs(ctx, jobs, ss)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 4: regroup per file and sort by line.
	out := make(map[string][]LoopReport, len(names))
	for i, file := range files {
		if file != nil {
			out[names[i]] = []LoopReport{}
		}
	}
	for i := range jobs {
		name := names[jobFile[i]]
		out[name] = append(out[name], loopReports[i])
	}
	for name := range out {
		rs := out[name]
		sort.SliceStable(rs, func(i, j int) bool { return rs[i].Line < rs[j].Line })
	}

	var failed []string
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Sprintf("%s: %v", names[i], err))
		}
	}
	if len(failed) > 0 {
		return out, fmt.Errorf("graph2par: %d of %d files failed to parse: %s",
			len(failed), len(names), strings.Join(failed, "; "))
	}
	return out, nil
}

// AnalyzeLoop reports on a single loop snippet (no file context).
func (e *Engine) AnalyzeLoop(loopSrc string) (*LoopReport, error) {
	scr := e.fe.Get()
	defer e.fe.Put(scr)
	st, err := scr.Parse.ParseStmt(loopSrc)
	if err != nil {
		return nil, err
	}
	switch st.(type) {
	case *cast.For, *cast.While:
	default:
		return nil, fmt.Errorf("graph2par: not a loop statement")
	}
	r := e.analyzeLoop(loopJob{loop: st, fileKey: snippetCacheKey}, scr)
	return &r, nil
}

// analyzeLoop runs the full per-loop pipeline for one job, consulting the
// analysis cache first when one is configured. job.fileKey identifies the
// enclosing translation unit's content ("" only when caching is off);
// cached results are byte-for-byte identical to a fresh computation
// because the key covers every input the pipeline reads: the model
// (fingerprint), the graph options, the file content (which determines
// funcs and the dynamic tool behaviour), and the loop's position and
// normalized source.
func (e *Engine) analyzeLoop(job loopJob, scr *frontend.Scratch) LoopReport {
	var key string
	if e.cache != nil {
		key = e.loopCacheKey(job.loop, job.fileKey)
		if r, ok := e.cache.Get(key); ok {
			return cloneReport(r)
		}
		if r, ok := e.peerFill(key); ok {
			return r
		}
	}
	g, enc := e.buildGraph(job, scr)
	pred, probs := e.model.Predict(enc)
	return e.finishLoop(job, g, key, pred, probs)
}

// buildGraph constructs and encodes the loop's aug-AST in the worker's
// scratch — the inference input half of the pipeline, shared by the
// per-loop and batched paths. The results live until the scratch is
// released.
func (e *Engine) buildGraph(job loopJob, scr *frontend.Scratch) (*auggraph.Graph, *auggraph.Encoded) {
	gopts := e.gopts
	gopts.Funcs = job.funcs
	g := scr.Graph.Build(job.loop, gopts)
	return g, scr.Graph.Encode(e.vocab, g)
}

// finishLoop turns a scored loop into its report: pragma synthesis, tool
// cross-checks, graph rendering, and the cache fill. key is the loop's
// cache key ("" when caching is off).
func (e *Engine) finishLoop(job loopJob, g *auggraph.Graph, key string, pred int, probs []float64) LoopReport {
	loop, file := job.loop, job.file
	report := LoopReport{
		Line:       loop.Pos().Line,
		Source:     cast.Print(loop),
		Parallel:   pred == 1,
		Confidence: probs[pred],
		GraphStats: g.Stats(),
		DOT:        g.DOT(fmt.Sprintf("loop at line %d", loop.Pos().Line)),
	}
	if report.Parallel {
		report.Categories = classifyCategories(loop)
		report.Suggestion = buildSuggestion(loop, report.Categories)
		if e.verify {
			// Static re-check of the suggestion just built. The verdict is
			// cached with the report below: the cache key already covers the
			// file content and loop source (every verify input), so a cached
			// verdict can never go stale relative to its loop.
			v := verify.Verify(verify.Request{Loop: loop, File: file, Pragma: report.Suggestion})
			report.Verdict = &v
			e.vstats.count(v.Level)
		}
		if e.rewrite {
			// Full per-loop rewrite plan: derived clauses, static gate,
			// atomic rescue, dynamic validation. Like the verdict, it is
			// cached with the report — PlanLoop reads nothing the cache key
			// does not already fingerprint.
			report.Rewrite = rewrite.PlanLoop(loop, file)
			e.rstats.count(report.Rewrite.Status)
		}
	}
	for _, tool := range e.tools {
		v := tool.Analyze(tools.Sample{
			Loop: loop, File: file,
			Compilable: file != nil, Runnable: file != nil,
		})
		report.Tools = append(report.Tools, ToolVerdict{
			Tool:        tool.Name(),
			Processable: v.Processable,
			Parallel:    v.Processable && v.Parallel,
			Reason:      v.Reason,
		})
	}
	if e.cache != nil {
		// Store a detached copy: the caller owns the returned report and
		// may mutate its slices.
		e.cache.Put(key, cloneReport(report))
		if e.warmHook != nil {
			// Push-warm the key's other owners with their own detached
			// copy (the hook enqueues; it must never retain the caller's).
			e.warmHook(key, cloneReport(report))
		}
	}
	return report
}

// classifyCategories derives pragma categories structurally (reduction
// updates present → reduction; privatizable temps → private; tiny single
// statement body → simd candidate).
func classifyCategories(loop cast.Stmt) []pragma.Category {
	body := loopBody(loop)
	if body == nil {
		return nil
	}
	var cats []pragma.Category
	iv := ""
	if f, ok := loop.(*cast.For); ok {
		iv = inductionVarName(f)
	}
	reds := findReds(body, iv)
	if len(reds) > 0 {
		cats = append(cats, pragma.Reduction)
	}
	if hasPrivatizableTemp(body, iv) {
		cats = append(cats, pragma.Private)
	}
	if len(cats) == 0 && cast.CountNodes(body) <= 14 {
		cats = append(cats, pragma.SIMD)
	}
	return cats
}

// Format renders a human-readable report block.
func (r *LoopReport) Format() string {
	verdict := "NOT parallel"
	if r.Parallel {
		verdict = "parallel"
	}
	out := fmt.Sprintf("loop at line %d: %s (confidence %.2f)\n", r.Line, verdict, r.Confidence)
	if r.Suggestion != "" {
		out += "  suggestion: " + r.Suggestion + "\n"
	}
	if r.Verdict != nil {
		out += "  verify:    " + r.Verdict.Level.String()
		if r.Verdict.Reason != "" {
			out += " — " + r.Verdict.Reason
		}
		out += "\n"
	}
	if r.Rewrite != nil {
		out += "  rewrite:   " + string(r.Rewrite.Status)
		switch {
		case r.Rewrite.Status != rewrite.StatusSuggestion:
			out += " — " + r.Rewrite.Pragma
		case r.Rewrite.Reason != "":
			out += " — " + r.Rewrite.Reason
		}
		out += "\n"
	}
	for _, tv := range r.Tools {
		state := "not parallel"
		if !tv.Processable {
			state = "cannot process"
		} else if tv.Parallel {
			state = "parallel"
		}
		out += fmt.Sprintf("  %-9s %-14s %s\n", tv.Tool+":", state, tv.Reason)
	}
	out += "  aug-AST: " + r.GraphStats + "\n"
	return out
}
