module graph2par

go 1.21
