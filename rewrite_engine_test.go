package graph2par

import (
	"strings"
	"testing"

	"graph2par/internal/rewrite"
	"graph2par/internal/verify"
)

// rewriteProgram mixes a loop the rewriter accepts with one the verifier
// must reject, so the engine's rewrite stage exercises both outcomes.
const rewriteProgram = `
void kernels(int n, double a[], double b[]) {
    for (int i = 0; i < n; i++) b[i] = a[i] * 2.0;
    for (int i = 1; i < n; i++) a[i] = a[i - 1] + 1.0;
}
`

func TestEngineRewriteStage(t *testing.T) {
	e := engine(t)
	e.SetRewrite(true)
	defer e.SetRewrite(false)

	reports, err := e.AnalyzeSource(rewriteProgram)
	if err != nil {
		t.Fatal(err)
	}
	plans := 0
	for _, r := range reports {
		if r.Parallel != (r.Rewrite != nil) {
			t.Errorf("line %d: Parallel=%v but Rewrite=%v", r.Line, r.Parallel, r.Rewrite)
		}
		if r.Rewrite == nil {
			continue
		}
		plans++
		switch r.Rewrite.Status {
		case rewrite.StatusRewritten, rewrite.StatusAtomic, rewrite.StatusSuggestion:
		default:
			t.Errorf("line %d: plan status %q outside the set", r.Line, r.Rewrite.Status)
		}
		if r.Rewrite.Status != rewrite.StatusSuggestion && r.Rewrite.Pragma == "" {
			t.Errorf("line %d: accepted plan without a pragma", r.Line)
		}
		if got := r.Format(); !strings.Contains(got, "rewrite:   "+string(r.Rewrite.Status)) {
			t.Errorf("line %d: Format misses the rewrite line:\n%s", r.Line, got)
		}
	}
	if plans == 0 {
		t.Skip("model predicted no loop parallel; nothing to plan")
	}
	st, ok := e.RewriteStats()
	if !ok {
		t.Fatal("RewriteStats not ok with the stage enabled")
	}
	if st.Rewritten+st.Atomic+st.Suggestion == 0 {
		t.Error("plan counters never moved")
	}
}

func TestEngineRewriteSource(t *testing.T) {
	e := engine(t)
	e.SetRewrite(true)
	e.SetCacheSize(64)
	defer func() {
		e.SetRewrite(false)
		e.SetCacheSize(0)
	}()

	res, err := e.RewriteSource(rewriteProgram)
	if err != nil {
		t.Fatal(err)
	}
	planned := false
	for _, r := range res.Reports {
		if r.Rewrite != nil {
			planned = true
		}
	}
	if !planned {
		t.Skip("model predicted no loop parallel; nothing to splice")
	}
	if res.Changed != strings.Contains(res.Output, "#pragma omp") {
		t.Errorf("Changed=%v but output:\n%s", res.Changed, res.Output)
	}
	// The recurrence loop must never ship, whatever the model predicted.
	if strings.Contains(res.Output, "#pragma omp parallel for\n    for (int i = 1;") {
		t.Errorf("recurrence loop rewritten:\n%s", res.Output)
	}
	// A cached re-run replays the stored plans; the splice must agree.
	again, err := e.RewriteSource(rewriteProgram)
	if err != nil {
		t.Fatal(err)
	}
	if again.Output != res.Output || again.Changed != res.Changed {
		t.Errorf("cached rewrite differs:\n%s\n--- vs ---\n%s", again.Output, res.Output)
	}
}

func TestEngineRewriteDisabled(t *testing.T) {
	e := engine(t)
	reports, err := e.AnalyzeSource(rewriteProgram)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Rewrite != nil {
			t.Errorf("line %d: plan attached with the stage off", r.Line)
		}
	}
	if _, ok := e.RewriteStats(); ok {
		t.Error("RewriteStats ok with the stage off")
	}
	if _, err := e.RewriteSource(rewriteProgram); err == nil {
		t.Error("RewriteSource succeeded with the stage off")
	}
}

func TestCloneReportDetachesRewrite(t *testing.T) {
	orig := LoopReport{Rewrite: &rewrite.LoopPlan{
		Status:      rewrite.StatusAtomic,
		Pragma:      "#pragma omp parallel for",
		AtomicLines: []int{3},
		Verdict:     verify.Verdict{Findings: []verify.Finding{{Check: "structure"}}},
	}}
	cl := cloneReport(orig)
	cl.Rewrite.Status = rewrite.StatusSuggestion
	cl.Rewrite.AtomicLines[0] = 99
	cl.Rewrite.Verdict.Findings[0].Check = "mutated"
	if orig.Rewrite.Status != rewrite.StatusAtomic ||
		orig.Rewrite.AtomicLines[0] != 3 ||
		orig.Rewrite.Verdict.Findings[0].Check != "structure" {
		t.Errorf("clone shares plan storage with the original: %+v", orig.Rewrite)
	}
}
