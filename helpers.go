package graph2par

import (
	"sort"
	"strings"

	"graph2par/internal/cast"
	"graph2par/internal/depend"
	"graph2par/internal/pragma"
)

// loopBody returns the body statement of a for/while loop.
func loopBody(loop cast.Stmt) cast.Stmt {
	switch x := loop.(type) {
	case *cast.For:
		return x.Body
	case *cast.While:
		return x.Body
	}
	return nil
}

// inductionVarName extracts the for-loop induction variable, if canonical.
func inductionVarName(f *cast.For) string {
	return depend.ExtractLoop(f).IndVar
}

// findReds lists recognized reduction updates in the body.
func findReds(body cast.Stmt, iv string) []depend.ReductionOp {
	return depend.FindReductions(body, map[string]bool{iv: true})
}

// reductionHint returns the first reduction's operator and variable for the
// pragma suggestion string.
func reductionHint(loop cast.Stmt) (op, v string) {
	body := loopBody(loop)
	if body == nil {
		return "", ""
	}
	iv := ""
	if f, ok := loop.(*cast.For); ok {
		iv = inductionVarName(f)
	}
	reds := findReds(body, iv)
	if len(reds) == 0 {
		return "", ""
	}
	return reds[0].Op, reds[0].Var
}

// hasPrivatizableTemp reports whether the body has a write-before-read
// scalar other than the induction variable.
func hasPrivatizableTemp(body cast.Stmt, iv string) bool {
	return len(privatizableVars(body, iv)) > 0
}

// privatizableVars lists write-before-read scalars (sorted), excluding
// block-local declarations which need no clause.
func privatizableVars(body cast.Stmt, iv string) []string {
	declared := map[string]bool{}
	cast.Walk(body, func(n cast.Node) bool {
		if d, ok := n.(*cast.VarDecl); ok {
			declared[d.Name] = true
		}
		return true
	})
	var out []string
	for name, cl := range depend.ClassifyScalars(body, iv, true) {
		if name == iv || declared[name] {
			continue
		}
		if cl == depend.ScalarPrivate {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// buildSuggestion renders a concrete OpenMP directive from the structural
// analysis: real reduction operators/variables and real private lists,
// falling back to the category templates when no names are known. The
// construct words (including `simd` and the `target teams distribute`
// prefix) come from pragma.Construct so they always precede the clauses.
func buildSuggestion(loop cast.Stmt, cats []pragma.Category) string {
	body := loopBody(loop)
	if body == nil {
		return pragma.Construct(cats)
	}
	iv := ""
	if f, ok := loop.(*cast.For); ok {
		iv = inductionVarName(f)
	}
	var b strings.Builder
	b.WriteString(pragma.Construct(cats))
	for _, r := range findReds(body, iv) {
		b.WriteString(" reduction(" + r.Op + ":" + r.Var + ")")
	}
	if priv := privatizableVars(body, iv); len(priv) > 0 {
		b.WriteString(" private(" + strings.Join(priv, ", ") + ")")
	}
	return b.String()
}
