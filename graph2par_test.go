package graph2par

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	testEngine     *Engine
	testEngineOnce sync.Once
	testEngineErr  error
)

// engine returns a shared, quickly trained engine.
func engine(t *testing.T) *Engine {
	t.Helper()
	testEngineOnce.Do(func() {
		testEngine, testEngineErr = NewEngine(EngineConfig{
			TrainScale: 0.01, Epochs: 3, Seed: 3, Quiet: true,
		})
	})
	if testEngineErr != nil {
		t.Fatal(testEngineErr)
	}
	return testEngine
}

const simpleProgram = `
int main() {
    int a[64], b[64];
    int i, s = 0;
    for (i = 0; i < 64; i++) b[i] = i;
    for (i = 0; i < 64; i++) a[i] = b[i] * 2;
    for (i = 1; i < 64; i++) a[i] = a[i-1] + 1;
    for (i = 0; i < 64; i++) s += a[i];
    return s;
}
`

func TestEngineAnalyzeSource(t *testing.T) {
	e := engine(t)
	reports, err := e.AnalyzeSource(simpleProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("loops = %d, want 4", len(reports))
	}
	for _, r := range reports {
		if r.Line == 0 {
			t.Error("missing line number")
		}
		if r.Confidence <= 0 || r.Confidence > 1 {
			t.Errorf("confidence %v out of range", r.Confidence)
		}
		if len(r.Tools) != 3 {
			t.Errorf("tool verdicts = %d", len(r.Tools))
		}
		if r.GraphStats == "" {
			t.Error("missing graph stats")
		}
		out := r.Format()
		if !strings.Contains(out, "loop at line") {
			t.Errorf("format: %q", out)
		}
	}
	// reports sorted by line
	for i := 1; i < len(reports); i++ {
		if reports[i].Line < reports[i-1].Line {
			t.Error("reports not sorted by line")
		}
	}
}

func TestEngineToolsAgreeOnCleanLoops(t *testing.T) {
	e := engine(t)
	reports, err := e.AnalyzeSource(simpleProgram)
	if err != nil {
		t.Fatal(err)
	}
	// loop 2 (a[i] = b[i]*2) should be detected by all three tools; loop 3
	// (recurrence) by none.
	doall := reports[1]
	for _, tv := range doall.Tools {
		if !tv.Parallel {
			t.Errorf("%s should detect the do-all: %s", tv.Tool, tv.Reason)
		}
	}
	recur := reports[2]
	for _, tv := range recur.Tools {
		if tv.Parallel {
			t.Errorf("%s must reject the recurrence", tv.Tool)
		}
	}
}

func TestEngineAnalyzeLoopSnippet(t *testing.T) {
	e := engine(t)
	r, err := e.AnalyzeLoop("for (i = 0; i < n; i++) sum += a[i];")
	if err != nil {
		t.Fatal(err)
	}
	if r.Source == "" {
		t.Error("missing source")
	}
	// snippet: static tools that need files cannot process
	for _, tv := range r.Tools {
		if tv.Tool == "DiscoPoP" && tv.Processable {
			t.Error("DiscoPoP cannot process a bare snippet")
		}
	}
	if _, err := e.AnalyzeLoop("x = 1;"); err == nil {
		t.Error("non-loop should be rejected")
	}
}

func TestEngineSuggestionForReduction(t *testing.T) {
	e := engine(t)
	r, err := e.AnalyzeLoop("for (i = 0; i < 1000; i++) total += vals[i];")
	if err != nil {
		t.Fatal(err)
	}
	if r.Parallel && !strings.Contains(r.Suggestion, "reduction(+:total)") {
		t.Errorf("suggestion = %q, want reduction(+:total)", r.Suggestion)
	}
}

func TestEngineCheckpointRoundTrip(t *testing.T) {
	e := engine(t)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := e.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewEngine(EngineConfig{ModelPath: path})
	if err != nil {
		t.Fatal(err)
	}
	// Same predictions before and after the round trip.
	orig, err := e.AnalyzeSource(simpleProgram)
	if err != nil {
		t.Fatal(err)
	}
	rest, err := loaded.AnalyzeSource(simpleProgram)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if orig[i].Parallel != rest[i].Parallel {
			t.Errorf("loop %d prediction changed after checkpoint round trip", i)
		}
		if diff := orig[i].Confidence - rest[i].Confidence; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("loop %d confidence drifted: %v vs %v", i, orig[i].Confidence, rest[i].Confidence)
		}
	}
}

func TestEngineParseErrorSurface(t *testing.T) {
	e := engine(t)
	if _, err := e.AnalyzeSource("int main() { for (i=0 i<10; i++) ; }"); err == nil {
		t.Error("parse error should surface")
	}
}
