package graph2par

import (
	"sort"
	"testing"

	"graph2par/internal/auggraph"
	"graph2par/internal/cast"
	"graph2par/internal/clex"
	"graph2par/internal/cparse"
	"graph2par/internal/frontend"
)

// The BenchmarkFrontend* family isolates the uncached analysis front-end —
// tokenize → parse → aug-AST build → vocab encode — on the same 32-file
// corpus the AnalyzeFiles family shares. FrontendPipeline is the pooled
// steady state (one scratch, Reset per pass) the serving engine runs in;
// FrontendPipelineFresh is the same work through the fresh-allocation
// entry points (the discipline of retained results, and the within-run
// comparator CI gates the pooled path against). allocs/op of these rows is
// machine-independent, which is what BENCH_pr5.json pins.

// frontendSources returns the shared corpus in deterministic order.
func frontendSources() []string {
	files := corpusFiles(benchCorpusSize)
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, name := range names {
		out[i] = files[name]
	}
	return out
}

// frontendVocab builds a frozen vocabulary over the corpus, mirroring the
// trained-model situation encode runs under.
func frontendVocab(b *testing.B, sources []string) *auggraph.Vocab {
	b.Helper()
	vocab := auggraph.NewVocab()
	for _, src := range sources {
		file, err := cparse.ParseFile(src)
		if err != nil {
			b.Fatal(err)
		}
		funcs, loops := collectLoops(file)
		opts := auggraph.Default()
		opts.Funcs = funcs
		for _, loop := range loops {
			vocab.Add(auggraph.Build(loop, opts))
		}
	}
	return vocab
}

// BenchmarkFrontendTokenize measures the byte-slice lexer alone with a
// recycled token buffer.
func BenchmarkFrontendTokenize(b *testing.B) {
	sources := frontendSources()
	var buf []clex.Token
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, src := range sources {
			toks, err := clex.TokenizeInto(src, buf)
			if err != nil {
				b.Fatal(err)
			}
			if len(toks) == 0 {
				b.Fatal("no tokens")
			}
			buf = toks
		}
	}
}

// BenchmarkFrontendParse measures tokenize + parse through one recycled
// session.
func BenchmarkFrontendParse(b *testing.B) {
	sources := frontendSources()
	sess := cparse.NewSession()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, src := range sources {
			file, err := sess.ParseFile(src)
			if err != nil {
				b.Fatal(err)
			}
			if len(file.Funcs) == 0 {
				b.Fatal("no functions")
			}
		}
		sess.Reset()
	}
}

// BenchmarkFrontendBuildGraph measures aug-AST construction alone over
// pre-parsed loops with a recycled builder.
func BenchmarkFrontendBuildGraph(b *testing.B) {
	sources := frontendSources()
	type prepared struct {
		loop  cast.Stmt
		funcs map[string]*cast.FuncDecl
	}
	var loops []prepared
	for _, src := range sources {
		file, err := cparse.ParseFile(src)
		if err != nil {
			b.Fatal(err)
		}
		funcs, ls := collectLoops(file)
		for _, l := range ls {
			loops = append(loops, prepared{loop: l, funcs: funcs})
		}
	}
	builder := auggraph.NewBuilder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range loops {
			opts := auggraph.Default()
			opts.Funcs = p.funcs
			g := builder.Build(p.loop, opts)
			if len(g.Nodes) == 0 {
				b.Fatal("empty graph")
			}
		}
		builder.Reset()
	}
}

// BenchmarkFrontendEncode measures vocab encoding alone (interned-symbol
// array lookups on the pooled path) over pre-built graphs.
func BenchmarkFrontendEncode(b *testing.B) {
	sources := frontendSources()
	vocab := frontendVocab(b, sources)
	builder := auggraph.NewBuilder()
	var graphs []*auggraph.Graph
	for _, src := range sources {
		file, err := cparse.ParseFile(src)
		if err != nil {
			b.Fatal(err)
		}
		funcs, ls := collectLoops(file)
		opts := auggraph.Default()
		opts.Funcs = funcs
		for _, l := range ls {
			// Detached graphs survive the per-pass Reset below, which then
			// only recycles the encodings.
			graphs = append(graphs, builder.BuildDetached(l, opts))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			enc := builder.Encode(vocab, g)
			if len(enc.KindIDs) != len(g.Nodes) {
				b.Fatal("bad encoding")
			}
		}
		builder.Reset()
	}
}

// BenchmarkFrontendPipeline is the pooled steady state: the full
// parse → graph → encode chain for every loop of the corpus through one
// recycled scratch, reset once per pass exactly like a served request.
func BenchmarkFrontendPipeline(b *testing.B) {
	sources := frontendSources()
	vocab := frontendVocab(b, sources)
	scr := frontend.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, src := range sources {
			file, err := scr.Parse.ParseFile(src)
			if err != nil {
				b.Fatal(err)
			}
			funcs, loops := collectLoops(file)
			opts := auggraph.Default()
			opts.Funcs = funcs
			for _, loop := range loops {
				g := scr.Graph.Build(loop, opts)
				enc := scr.Graph.Encode(vocab, g)
				total += len(enc.KindIDs)
			}
		}
		if total == 0 {
			b.Fatal("pipeline produced no nodes")
		}
		scr.Reset()
	}
}

// BenchmarkFrontendPipelineFresh runs the identical work through the
// fresh-allocation entry points (cparse.ParseFile, auggraph.Build,
// Vocab.Encode) — the retained-results discipline. The within-run ratio
// FrontendPipeline/FrontendPipelineFresh is CI's machine-independent proof
// that scratch pooling keeps paying for itself.
func BenchmarkFrontendPipelineFresh(b *testing.B) {
	sources := frontendSources()
	vocab := frontendVocab(b, sources)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, src := range sources {
			file, err := cparse.ParseFile(src)
			if err != nil {
				b.Fatal(err)
			}
			funcs, loops := collectLoops(file)
			opts := auggraph.Default()
			opts.Funcs = funcs
			for _, loop := range loops {
				g := auggraph.Build(loop, opts)
				enc := vocab.Encode(g)
				total += len(enc.KindIDs)
			}
		}
		if total == 0 {
			b.Fatal("pipeline produced no nodes")
		}
	}
}
