package graph2par

import (
	"reflect"
	"sync"
	"testing"
)

// TestScratchReuseByteIdentical pins the zero-allocation front-end's core
// invariant: analyses served from recycled scratches (token buffers, AST
// slabs, graph/encoding storage, inference arenas) are byte-for-byte
// identical to the first, fresh-memory run. Round 0 populates the engine's
// scratch pool; every later round reuses recycled memory, so any stale
// state — an unzeroed buffer, a leaked map entry, an aliased slice — shows
// up as a diff here (and under -race in CI as a data race).
func TestScratchReuseByteIdentical(t *testing.T) {
	e := engine(t)
	files := corpusFiles(8)

	first, err := e.AnalyzeFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round < 4; round++ {
		again, err := e.AnalyzeFiles(files)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("round %d: recycled-scratch analysis diverged from the fresh run", round)
		}
	}

	// Per-file and per-loop entry points share the same pool.
	srcReports, err := e.AnalyzeSource(simpleProgram)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		again, err := e.AnalyzeSource(simpleProgram)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(srcReports, again) {
			t.Fatalf("AnalyzeSource round %d diverged", round)
		}
	}
	loopReport, err := e.AnalyzeLoop("for (i = 0; i < n; i++) s += a[i];")
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		again, err := e.AnalyzeLoop("for (i = 0; i < n; i++) s += a[i];")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(loopReport, again) {
			t.Fatalf("AnalyzeLoop round %d diverged", round)
		}
	}
}

// TestScratchReuseConcurrent hammers the pool from concurrent AnalyzeFiles
// and AnalyzeSource calls (the serving profile: many requests sharing one
// warm engine). Run under -race this is the scratch-safety gate; the
// result equality doubles as a cross-goroutine determinism check.
func TestScratchReuseConcurrent(t *testing.T) {
	e := engine(t)
	files := corpusFiles(6)
	want, err := e.AnalyzeFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	wantSrc, err := e.AnalyzeSource(simpleProgram)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				if g%2 == 0 {
					got, err := e.AnalyzeFiles(files)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(want, got) {
						t.Errorf("goroutine %d round %d: AnalyzeFiles diverged", g, round)
						return
					}
				} else {
					got, err := e.AnalyzeSource(simpleProgram)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(wantSrc, got) {
						t.Errorf("goroutine %d round %d: AnalyzeSource diverged", g, round)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
