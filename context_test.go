package graph2par

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestContextVariantsMatchPlainCalls pins the core contract of the
// Context variants: with a live context they are the plain calls —
// identical reports, identical errors — so serving code can route
// everything through them without a behavior fork.
func TestContextVariantsMatchPlainCalls(t *testing.T) {
	e := engine(t)
	plain, err := e.AnalyzeSource(simpleProgram)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := e.AnalyzeSourceContext(context.Background(), simpleProgram)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, ctxed) {
		t.Error("AnalyzeSourceContext(Background) differs from AnalyzeSource")
	}

	files := map[string]string{"a.c": simpleProgram}
	plainF, err := e.AnalyzeFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	ctxedF, err := e.AnalyzeFilesContext(context.Background(), files)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plainF, ctxedF) {
		t.Error("AnalyzeFilesContext(Background) differs from AnalyzeFiles")
	}
}

// TestAnalyzeSourceContextCanceled: a context that is already dead must
// yield its error and no reports — before any parsing happens.
func TestAnalyzeSourceContextCanceled(t *testing.T) {
	e := engine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reports, err := e.AnalyzeSourceContext(ctx, simpleProgram)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if reports != nil {
		t.Errorf("canceled analysis returned %d reports, want none", len(reports))
	}
}

// TestAnalyzeSourceContextDeadline: an expired deadline is reported as
// context.DeadlineExceeded (the error serve maps to 504), not Canceled.
func TestAnalyzeSourceContextDeadline(t *testing.T) {
	e := engine(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := e.AnalyzeSourceContext(ctx, simpleProgram); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestAnalyzeFilesContextCanceled: the batched path returns ctx's error
// and a nil result map on cancellation — never a partial map a caller
// could mistake for a complete batch.
func TestAnalyzeFilesContextCanceled(t *testing.T) {
	e := engine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := e.AnalyzeFilesContext(ctx, map[string]string{"a.c": simpleProgram, "b.c": simpleProgram})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Errorf("canceled batch returned a %d-entry result map, want nil", len(out))
	}
}

// TestRewriteSourceContextCanceled: the rewrite pipeline inherits the
// analysis stage's cancellation; a dead context yields its error before
// any splicing.
func TestRewriteSourceContextCanceled(t *testing.T) {
	e := engine(t)
	e.SetRewrite(true)
	defer e.SetRewrite(false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.RewriteSourceContext(ctx, simpleProgram)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("canceled rewrite returned a result")
	}
}

// TestContextCancelMidAnalysis: cancelling while a multi-file analysis
// runs stops it at a stage boundary with ctx's error. The cancel lands
// asynchronously, so either outcome — completed before the cancel, or
// stopped with context.Canceled — is legal; what is not legal is any
// other error or a torn result (err == nil but missing files).
func TestContextCancelMidAnalysis(t *testing.T) {
	e := engine(t)
	files := make(map[string]string, 8)
	for i := 0; i < 8; i++ {
		files[string(rune('a'+i))+".c"] = simpleProgram
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	out, err := e.AnalyzeFilesContext(ctx, files)
	switch {
	case err == nil:
		if len(out) != len(files) {
			t.Errorf("completed run returned %d of %d files", len(out), len(files))
		}
	case errors.Is(err, context.Canceled):
		if out != nil {
			t.Error("canceled run returned a partial result map")
		}
	default:
		t.Fatalf("unexpected error: %v", err)
	}
}
