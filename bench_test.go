// Benchmarks: one per table and figure of the paper's evaluation, plus the
// section 6.5 overhead measurement and the DESIGN.md ablations. Each bench
// regenerates its artifact end to end (corpus → tools/models → table) so
// `go test -bench=.` reproduces the whole evaluation; the suite fixture is
// shared and cached where the paper's protocol allows it.
package graph2par

import (
	"runtime"
	"sync"
	"testing"

	"graph2par/internal/auggraph"
	"graph2par/internal/cparse"
	"graph2par/internal/dataset"
	"graph2par/internal/experiments"
	"graph2par/internal/tools"
	"graph2par/internal/train"
)

var (
	benchSuite     *experiments.Suite
	benchSuiteOnce sync.Once

	benchEngine     *Engine
	benchEngineOnce sync.Once
	benchEngineErr  error
)

// suite returns the shared benchmark suite (small scale: the shapes of the
// paper's results emerge; absolute counts scale with -scale in
// cmd/evaluate).
func suite() *experiments.Suite {
	benchSuiteOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.Scale = 0.02
		cfg.Seed = 20230501
		cfg.Training = train.Options{
			Epochs: 4, BatchSize: 8, LR: 3e-3,
			Hidden: 32, Heads: 4, Layers: 2, Seed: 77,
			Graph: auggraph.Default(),
		}
		benchSuite = experiments.NewSuite(cfg)
	})
	return benchSuite
}

// BenchmarkTable1_DatasetStats regenerates the OMP_Serial statistic
// summary (corpus generation + aggregation).
func BenchmarkTable1_DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := dataset.Generate(dataset.Config{Scale: 0.02, Seed: uint64(i) + 1})
		r := (&experiments.Suite{Corpus: c}).Table1()
		if len(r.Rows) == 0 {
			b.Fatal("empty table 1")
		}
	}
}

// BenchmarkFigure2_MissedLoops reproduces the category-wise missed-loop
// histogram of the three tools.
func BenchmarkFigure2_MissedLoops(b *testing.B) {
	st := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := st.Figure2()
		if len(r.Missed) != 3 {
			b.Fatal("missing tools")
		}
	}
}

// BenchmarkTable2_RepresentationComparison trains AST, PragFormer and
// Graph2Par and scores pragma-existence prediction.
func BenchmarkTable2_RepresentationComparison(b *testing.B) {
	st := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := st.Table2()
		if len(r.Rows) != 3 {
			b.Fatal("expected 3 approaches")
		}
	}
}

// BenchmarkTable3_DetectedLoops counts detected parallel loops per
// approach.
func BenchmarkTable3_DetectedLoops(b *testing.B) {
	st := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := st.Table3()
		if len(r.Rows) != 5 {
			b.Fatal("expected 5 approaches")
		}
	}
}

// BenchmarkTable4_SubsetComparison evaluates each tool against Graph2Par
// on the loops that tool can process.
func BenchmarkTable4_SubsetComparison(b *testing.B) {
	st := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := st.Table4()
		if len(r.Subsets) != 3 {
			b.Fatal("expected 3 subsets")
		}
	}
}

// BenchmarkTable5_PragmaClassification trains the four per-pragma heads
// for Graph2Par and PragFormer.
func BenchmarkTable5_PragmaClassification(b *testing.B) {
	st := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := st.Table5()
		if len(r.Rows) != 8 {
			b.Fatal("expected 8 rows")
		}
	}
}

// BenchmarkAugASTConstruction measures section 6.5's overhead claim: the
// cost of building one aug-AST for a typical dataset loop.
func BenchmarkAugASTConstruction(b *testing.B) {
	loop, err := cparse.ParseStmt(`for (i = 0; i < 30000000; i++)
        error = error + fabs(a[i] - a[i+1]);`)
	if err != nil {
		b.Fatal(err)
	}
	opts := auggraph.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := auggraph.Build(loop, opts)
		if len(g.Nodes) == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkCaseStudy_ToolBlindSpots reproduces section 6.6: loops missed
// by every tool, re-scored by Graph2Par.
func BenchmarkCaseStudy_ToolBlindSpots(b *testing.B) {
	st := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := st.CaseStudy()
		if r.MissedByAllTools == 0 {
			b.Fatal("no blind spots found")
		}
	}
}

// BenchmarkAblationEdges toggles the aug-AST edge families.
func BenchmarkAblationEdges(b *testing.B) {
	st := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := st.AblationEdges()
		if len(r.Rows) != 4 {
			b.Fatal("expected 4 edge configs")
		}
	}
}

// BenchmarkAblationHeterogeneity compares normalized vs raw identifiers.
func BenchmarkAblationHeterogeneity(b *testing.B) {
	st := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := st.AblationHeterogeneity()
		if len(r.Rows) != 2 {
			b.Fatal("expected 2 configs")
		}
	}
}

// BenchmarkAblationCapacity sweeps heads/layers.
func BenchmarkAblationCapacity(b *testing.B) {
	st := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := st.AblationCapacity()
		if len(r.Rows) != 3 {
			b.Fatal("expected 3 configs")
		}
	}
}

// BenchmarkHGTForward isolates one HGT forward pass (inference cost per
// loop).
func BenchmarkHGTForward(b *testing.B) {
	st := suite()
	model, vocab := st.Graph2Par()
	set := train.PrepareGraphs(st.Test[:1], auggraph.Default(), vocab, train.ParallelLabel)
	if len(set.Encoded) == 0 {
		b.Fatal("no test graph")
	}
	enc := set.Encoded[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Predict(enc)
	}
}

// analysisEngine returns a shared quickly-trained engine for the
// AnalyzeFiles benchmarks (training cost must stay out of the timed loop).
func analysisEngine(b *testing.B) *Engine {
	benchEngineOnce.Do(func() {
		benchEngine, benchEngineErr = NewEngine(EngineConfig{
			TrainScale: 0.01, Epochs: 3, Seed: 9, Quiet: true,
		})
	})
	if benchEngineErr != nil {
		b.Fatal(benchEngineErr)
	}
	return benchEngine
}

// benchCorpusSize is the corpus the AnalyzeFiles benchmark family shares:
// all four variants (Serial/Parallel/Cached/Batched) analyze the same 32
// files so their ns/op are directly comparable — these four are the rows
// of BENCH_pr3.json and the regression gate in CI.
const benchCorpusSize = 32

// benchmarkAnalyzeFiles measures one full corpus analysis pass — parse,
// aug-AST build, HGT inference, tool cross-checks — over the shared
// 32-file corpus with the given worker-pool and inference-batch bounds
// (batch 1 = one forward pass per loop, the pre-batching pipeline).
func benchmarkAnalyzeFiles(b *testing.B, workers, batch int) {
	e := *analysisEngine(b)
	e.SetWorkers(workers)
	e.SetBatchSize(batch)
	files := corpusFiles(benchCorpusSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := e.AnalyzeFiles(files)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != len(files) {
			b.Fatalf("analyzed %d of %d files", len(out), len(files))
		}
	}
}

// BenchmarkAnalyzeFilesSerial is the Workers=1, unbatched baseline.
func BenchmarkAnalyzeFilesSerial(b *testing.B) { benchmarkAnalyzeFiles(b, 1, 1) }

// BenchmarkAnalyzeFilesParallel runs the same corpus unbatched with a full
// GOMAXPROCS pool; the ratio to Serial is the measured speedup of the
// concurrent per-loop pipeline.
func BenchmarkAnalyzeFilesParallel(b *testing.B) {
	benchmarkAnalyzeFiles(b, runtime.GOMAXPROCS(0), 1)
}

// BenchmarkAnalyzeFilesBatched runs the same corpus and the same
// GOMAXPROCS pool with size-bucketed batched inference (the default
// DefaultBatchSize bound): the ratio to Parallel is the measured win of
// amortizing per-graph op dispatch across shared forward passes.
func BenchmarkAnalyzeFilesBatched(b *testing.B) {
	benchmarkAnalyzeFiles(b, runtime.GOMAXPROCS(0), DefaultBatchSize)
}

// BenchmarkAnalyzeFilesCached is BenchmarkAnalyzeFilesSerial with the
// content-addressed analysis cache enabled and warmed: the same 32-file
// corpus, the same single worker, but every loop served from the cache —
// the repeat-query hot path of a long-running graph2serve instance. The
// ratio to BenchmarkAnalyzeFilesSerial is the measured cache win.
func BenchmarkAnalyzeFilesCached(b *testing.B) {
	e := *analysisEngine(b)
	e.SetWorkers(1)
	e.SetBatchSize(1)
	e.SetCacheSize(1 << 14)
	files := corpusFiles(benchCorpusSize)
	if _, err := e.AnalyzeFiles(files); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := e.AnalyzeFiles(files)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != len(files) {
			b.Fatalf("analyzed %d of %d files", len(out), len(files))
		}
	}
	b.StopTimer()
	if st, ok := e.CacheStats(); !ok || st.Hits == 0 {
		b.Fatal("cache never hit; the benchmark measured nothing")
	}
}

// BenchmarkRewriteFile measures the full analyze-plus-rewrite path over
// the shared corpus at Workers=1, batch 1 — the same configuration as
// BenchmarkAnalyzeFilesSerial, so the ratio between the two rows is the
// measured cost of the rewrite stage itself (clause derivation, verify
// gating, dynamic validation and the splice) on top of plain analysis.
// CI pins that ratio with a within-run benchjson gate.
func BenchmarkRewriteFile(b *testing.B) {
	e := *analysisEngine(b)
	e.SetWorkers(1)
	e.SetBatchSize(1)
	e.SetRewrite(true)
	files := corpusFiles(benchCorpusSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, src := range files {
			if _, err := e.RewriteSource(src); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkToolAnalysis isolates the per-loop cost of each comparator.
func BenchmarkToolAnalysis(b *testing.B) {
	st := suite()
	for _, tool := range st.Tools {
		tool := tool
		b.Run(tool.Name(), func(b *testing.B) {
			// rotate over the corpus to average across loop shapes
			n := len(st.Corpus.Samples)
			for i := 0; i < b.N; i++ {
				s := st.Corpus.Samples[i%n]
				tool.Analyze(tools.Sample{
					Loop: s.Loop, File: s.File,
					Compilable: s.Compilable, Runnable: s.Runnable,
				})
			}
		})
	}
}
